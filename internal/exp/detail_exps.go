package exp

import (
	"fmt"
	"sort"

	"cisim/internal/bpred"
	"cisim/internal/ooo"
	"cisim/internal/plot"
	"cisim/internal/stats"
)

func init() {
	register(&Experiment{
		ID:    "fig5",
		Title: "Figure 5: BASE / CI / CI-I IPC for three window sizes",
		Paper: "CI clearly above BASE for the less predictable workloads; CI-I only 1-4% above CI",
		tables: func(o Options) []*stats.Table {
			return []*stats.Table{stats.NewTable("Figure 5: IPC with and without control independence",
				"benchmark", "window", "BASE", "CI", "CI-I")}
		},
		workload: wlFig5,
	})
	register(&Experiment{
		ID:    "fig6",
		Title: "Figure 6: percent IPC improvement of CI over BASE",
		Paper: "10-30% improvements; go the most, vortex the least; most variation between 128 and 256",
		tables: func(o Options) []*stats.Table {
			return []*stats.Table{stats.NewTable("Figure 6: percent improvement in IPC due to control independence",
				"benchmark", "window", "CI vs BASE", "CI-I vs BASE")}
		},
		workload: wlFig6,
		finish: func(o Options, r *Result) {
			r.Plots = append(r.Plots, barsFromTable(r.Tables[0],
				"Figure 6: percent improvement over BASE", []int{0, 1}, []int{2, 3}, "%"))
		},
	})
	register(&Experiment{
		ID:    "table2",
		Title: "Table 2: restart/redispatch statistics (256-entry window)",
		Paper: "reconvergence present for >60% of mispredictions (less for vortex); removed <14, inserted <20; >50 CI instructions; 2-3 CI reissues from new names",
		tables: func(o Options) []*stats.Table {
			return []*stats.Table{stats.NewTable("Table 2: statistics for restart/redispatch sequences",
				"benchmark", "% reconverge", "avg removed CD", "avg inserted CD", "avg CI instr", "avg CI new names", "avg restart cycles")}
		},
		workload: wlTable2,
	})
	register(&Experiment{
		ID:    "table3",
		Title: "Table 3: work saved by control independence (256-entry window)",
		Paper: "fetch saved 5-70% of retired instructions; work saved 4-39%; compress extreme, vortex minimal",
		tables: func(o Options) []*stats.Table {
			return []*stats.Table{stats.NewTable("Table 3: work saved by exploiting control independence (fraction of retired instructions)",
				"benchmark", "fetch saved", "work saved", "work discarded", "had only fetched")}
		},
		workload: wlTable3,
	})
	register(&Experiment{
		ID:    "table4",
		Title: "Table 4: instruction issues per retired instruction (256-entry window)",
		Paper: "1.04-1.24 without CI, 1.10-2.44 with CI; compress extreme through memory-order violations",
		tables: func(o Options) []*stats.Table {
			t := stats.NewTable("Table 4: instruction issues per retired instruction",
				"benchmark", "noCI total", "noCI mem viol", "CI total", "CI mem viol", "CI reg viol")
			t.Note = "violation columns count root-cause reissues per retired instruction; chains reissue on top"
			return []*stats.Table{t}
		},
		workload: wlTable4,
	})
	register(&Experiment{
		ID:    "fig8",
		Title: "Figure 8: simple vs optimal preemption (256-entry window)",
		Paper: "simple performs essentially as well as optimal; restarts last only 1-2 cycles",
		tables: func(o Options) []*stats.Table {
			return []*stats.Table{stats.NewTable("Figure 8: simple vs optimal preemption",
				"benchmark", "simple IPC", "optimal IPC", "simple vs optimal", "preemptions", "case-3")}
		},
		workload: wlFig8,
		finish: func(o Options, r *Result) {
			r.Plots = append(r.Plots, barsFromTable(r.Tables[0],
				"Figure 8: IPC under the preemption policies", []int{0}, []int{1, 2}, ""))
		},
	})
	register(&Experiment{
		ID:    "fig9",
		Title: "Figure 9: branch completion models and false mispredictions (256-entry window)",
		Paper: "spec-C about +10% over non-spec; HFM adds little except for compress (up to 37% under spec)",
		tables: func(o Options) []*stats.Table {
			cols := []string{"benchmark"}
			for _, c := range fig9Cases {
				cols = append(cols, c.name)
			}
			t := stats.NewTable("Figure 9a: IPC under the branch completion models", cols...)
			d := stats.NewTable("Figure 9b: percent IPC differences",
				"benchmark", "spec-C/non-spec", "spec-D/non-spec", "spec/non-spec",
				"spec-C-HFM/spec-C", "spec-D-HFM/spec-D", "spec-HFM/spec")
			h := stats.NewTable("Figure 9c (§A.2.2): confidence-delayed completion under spec",
				"benchmark", "spec", "spec + confidence delay", "difference")
			h.Note = "the paper's early experiments found confidence-based delay unprofitable (more true mispredictions delayed than false ones prevented)"
			return []*stats.Table{t, d, h}
		},
		workload: wlFig9,
		finish: func(o Options, r *Result) {
			r.Plots = append(r.Plots, barsFromTable(r.Tables[1],
				"Figure 9b: percent IPC differences between completion models", []int{0}, []int{1, 2, 3, 4, 5, 6}, "%"))
		},
	})
	register(&Experiment{
		ID:    "fig10",
		Title: "Figure 10: true/false misprediction history (TFR) detection",
		Paper: "delaying 10% of true mispredictions catches 60-95% of false ones with dynamic(xor); static fails on compress",
		tables: func(o Options) []*stats.Table {
			t := stats.NewTable("Figure 10: detecting false mispredictions from true/false history",
				"benchmark", "true misps", "false misps",
				"static @10%T", "static @20%T", "dyn(pc) @10%T", "dyn(pc) @20%T", "dyn(xor) @10%T", "dyn(xor) @20%T")
			t.Note = "columns report the fraction of false mispredictions identified when delaying at most 10%/20% of true mispredictions"
			return []*stats.Table{t}
		},
		workload: wlFig10,
	})
	register(&Experiment{
		ID:    "fig12",
		Title: "Figure 12: impact of oracle global branch history (256-entry window)",
		Paper: "at most plus or minus 5% IPC",
		tables: func(o Options) []*stats.Table {
			return []*stats.Table{stats.NewTable("Figure 12: impact of oracle global branch history",
				"benchmark", "timing history IPC", "oracle history IPC", "difference")}
		},
		workload: wlFig12,
	})
	register(&Experiment{
		ID:    "fig13",
		Title: "Figure 13: evaluation of re-predict sequences (256-entry window)",
		Paper: "no re-prediction (CI-NR) forfeits half or more of CI's benefit; CI within 5% of oracle re-prediction except compress",
		tables: func(o Options) []*stats.Table {
			return []*stats.Table{stats.NewTable("Figure 13: evaluation of re-predictions",
				"benchmark", "base", "CI-NR", "CI", "CI-OR", "CI-NR vs base", "CI vs base", "CI-OR vs base")}
		},
		workload: wlFig13,
		finish: func(o Options, r *Result) {
			r.Plots = append(r.Plots, barsFromTable(r.Tables[0],
				"Figure 13: percent improvement over base", []int{0}, []int{5, 6, 7}, "%"))
		},
	})
	register(&Experiment{
		ID:    "fig14",
		Title: "Figure 14: ROB segment size (256-entry window)",
		Paper: "4-instruction segments within 5% of 1-instruction; 16-instruction segments cost up to half the CI benefit on irregular control",
		tables: func(o Options) []*stats.Table {
			return []*stats.Table{stats.NewTable("Figure 14: varying ROB segment size",
				"benchmark", "base", "seg 1", "seg 4", "seg 16", "seg-1 vs base", "seg-4 vs base", "seg-16 vs base")}
		},
		workload: wlFig14,
		finish: func(o Options, r *Result) {
			r.Plots = append(r.Plots, barsFromTable(r.Tables[0],
				"Figure 14: percent improvement over base by segment size", []int{0}, []int{5, 6, 7}, "%"))
		},
	})
	register(&Experiment{
		ID:    "fig17",
		Title: "Figure 17: hardware heuristics for reconvergent points (256-entry window)",
		Paper: "return is generally the best single heuristic; combined heuristics reach 1/3 (gcc) to 3/4 (jpeg) of full CI",
		tables: func(o Options) []*stats.Table {
			cols := []string{"benchmark"}
			for _, c := range fig17Combos {
				cols = append(cols, c.name)
			}
			return []*stats.Table{stats.NewTable("Figure 17: percent improvement over BASE, heuristic reconvergence", cols...)}
		},
		workload: wlFig17,
		finish: func(o Options, r *Result) {
			r.Plots = append(r.Plots, barsFromTable(r.Tables[0],
				"Figure 17: percent improvement over BASE by reconvergence source", []int{0}, []int{1, 2, 3, 4, 5, 6, 7, 8, 9}, "%"))
		},
	})
}

// fig5Windows returns the window sweep for Figure 5/6.
func fig5Windows(o Options) []int {
	if o.Quick {
		return []int{128, 256}
	}
	return []int{128, 256, 512}
}

func wlFig5(c *wctx) error {
	machines := []ooo.Machine{ooo.Base, ooo.CI, ooo.CIInstant}
	curves := make([]plot.Series, len(machines))
	for mi, m := range machines {
		curves[mi].Name = m.String()
	}
	for _, win := range fig5Windows(c.o) {
		row := Row{c.w.Name, win}
		for mi, mach := range machines {
			r, err := c.detailed(ooo.Config{Machine: mach, WindowSize: win})
			if err != nil {
				return err
			}
			row = append(row, fmtF(r.Stats.IPC()))
			curves[mi].Points = append(curves[mi].Points, plot.Point{X: float64(win), Y: r.Stats.IPC()})
		}
		c.row(0, row...)
	}
	c.plot(Plot{
		Title:  "Figure 5 (" + c.w.Name + "): IPC vs window size",
		Series: curves,
	})
	return nil
}

func wlFig6(c *wctx) error {
	for _, win := range fig5Windows(c.o) {
		base, err := c.detailed(ooo.Config{Machine: ooo.Base, WindowSize: win})
		if err != nil {
			return err
		}
		ci, err := c.detailed(ooo.Config{Machine: ooo.CI, WindowSize: win})
		if err != nil {
			return err
		}
		cii, err := c.detailed(ooo.Config{Machine: ooo.CIInstant, WindowSize: win})
		if err != nil {
			return err
		}
		c.row(0, c.w.Name, win,
			stats.Percent(stats.PctImprove(base.Stats.IPC(), ci.Stats.IPC())),
			stats.Percent(stats.PctImprove(base.Stats.IPC(), cii.Stats.IPC())))
	}
	return nil
}

func table2Window(o Options) int {
	if o.Quick {
		return 128
	}
	return 256
}

func wlTable2(c *wctx) error {
	r, err := c.detailed(ooo.Config{Machine: ooo.CI, WindowSize: table2Window(c.o)})
	if err != nil {
		return err
	}
	s := &r.Stats
	c.row(0, c.w.Name,
		stats.Percent(100*s.ReconvRate()),
		stats.Ratio(s.RemovedCD, s.Reconverged),
		stats.Ratio(s.InsertedCD, s.Reconverged),
		stats.Ratio(s.CIInstructions, s.Reconverged),
		stats.Ratio(s.CINewNames, s.Reconverged),
		stats.Ratio(s.RestartCycles, s.Reconverged))
	return nil
}

func wlTable3(c *wctx) error {
	r, err := c.detailed(ooo.Config{Machine: ooo.CI, WindowSize: table2Window(c.o)})
	if err != nil {
		return err
	}
	s := &r.Stats
	c.row(0, c.w.Name,
		stats.Percent(100*stats.Ratio(s.FetchSaved, s.Retired)),
		stats.Percent(100*stats.Ratio(s.WorkSaved, s.Retired)),
		stats.Percent(100*stats.Ratio(s.WorkDiscarded, s.Retired)),
		stats.Percent(100*stats.Ratio(s.OnlyFetched, s.Retired)))
	return nil
}

func wlTable4(c *wctx) error {
	base, err := c.detailed(ooo.Config{Machine: ooo.Base, WindowSize: table2Window(c.o)})
	if err != nil {
		return err
	}
	ci, err := c.detailed(ooo.Config{Machine: ooo.CI, WindowSize: table2Window(c.o)})
	if err != nil {
		return err
	}
	bs, cs := &base.Stats, &ci.Stats
	c.row(0, c.w.Name,
		fmt.Sprintf("%.3f", bs.IssuesPerRetired()),
		fmt.Sprintf("%.4f", stats.Ratio(bs.MemViolations, bs.Retired)),
		fmt.Sprintf("%.3f", cs.IssuesPerRetired()),
		fmt.Sprintf("%.4f", stats.Ratio(cs.MemViolations, cs.Retired)),
		fmt.Sprintf("%.4f", stats.Ratio(cs.RegViolations, cs.Retired)))
	return nil
}

func wlFig8(c *wctx) error {
	simple, err := c.detailed(ooo.Config{Machine: ooo.CI, WindowSize: table2Window(c.o), Preempt: ooo.PreemptSimple})
	if err != nil {
		return err
	}
	optimal, err := c.detailed(ooo.Config{Machine: ooo.CI, WindowSize: table2Window(c.o), Preempt: ooo.PreemptOptimal})
	if err != nil {
		return err
	}
	c.row(0, c.w.Name, fmtF(simple.Stats.IPC()), fmtF(optimal.Stats.IPC()),
		stats.Percent(stats.PctImprove(optimal.Stats.IPC(), simple.Stats.IPC())),
		int(optimal.Stats.Preemptions), int(optimal.Stats.Case3Preemptions))
	return nil
}

// fig9Cases are the branch completion models of Figure 9a, in column
// order.
var fig9Cases = []struct {
	name string
	cm   ooo.Completion
	hfm  bool
}{
	{"non-spec", ooo.NonSpec, false},
	{"spec-D", ooo.SpecD, false},
	{"spec-D-HFM", ooo.SpecD, true},
	{"spec-C", ooo.SpecC, false},
	{"spec-C-HFM", ooo.SpecC, true},
	{"spec", ooo.Spec, false},
	{"spec-HFM", ooo.Spec, true},
}

func wlFig9(c *wctx) error {
	ipc := map[string]float64{}
	row := Row{c.w.Name}
	for _, cs := range fig9Cases {
		r, err := c.detailed(ooo.Config{
			Machine: ooo.CI, WindowSize: table2Window(c.o),
			Completion: cs.cm, HideFalseMispredictions: cs.hfm,
		})
		if err != nil {
			return err
		}
		ipc[cs.name] = r.Stats.IPC()
		row = append(row, fmtF(r.Stats.IPC()))
	}
	c.row(0, row...)
	c.row(1, c.w.Name,
		stats.Percent(stats.PctImprove(ipc["non-spec"], ipc["spec-C"])),
		stats.Percent(stats.PctImprove(ipc["non-spec"], ipc["spec-D"])),
		stats.Percent(stats.PctImprove(ipc["non-spec"], ipc["spec"])),
		stats.Percent(stats.PctImprove(ipc["spec-C"], ipc["spec-C-HFM"])),
		stats.Percent(stats.PctImprove(ipc["spec-D"], ipc["spec-D-HFM"])),
		stats.Percent(stats.PctImprove(ipc["spec"], ipc["spec-HFM"])))
	// §A.2.2's hedge: confidence-gated completion under the spec model.
	hedged, err := c.detailed(ooo.Config{Machine: ooo.CI, WindowSize: table2Window(c.o),
		Completion: ooo.Spec, ConfidenceDelay: true})
	if err != nil {
		return err
	}
	c.row(2, c.w.Name, fmtF(ipc["spec"]), fmtF(hedged.Stats.IPC()),
		stats.Percent(stats.PctImprove(ipc["spec"], hedged.Stats.IPC())))
	return nil
}

// wlFig10 reproduces the TFR analysis: group mispredictions per static
// branch (static) or per TFR pattern (dynamic), sort groups by false
// misprediction rate, and report the fraction of false mispredictions
// caught when at most 10% / 20% of true mispredictions are delayed.
func wlFig10(c *wctx) error {
	r, err := c.detailed(ooo.Config{
		Machine: ooo.CI, WindowSize: table2Window(c.o),
		Completion: ooo.Spec, RecordMisps: true,
	})
	if err != nil {
		return err
	}
	evs := r.MispEvents
	var trues, falses int
	for _, e := range evs {
		if e.False {
			falses++
		} else {
			trues++
		}
	}
	s10, s20 := tfrCurve(evs, schemeStatic)
	p10, p20 := tfrCurve(evs, schemePC)
	x10, x20 := tfrCurve(evs, schemeXor)
	c.row(0, c.w.Name, trues, falses,
		stats.Percent(100*s10), stats.Percent(100*s20),
		stats.Percent(100*p10), stats.Percent(100*p20),
		stats.Percent(100*x10), stats.Percent(100*x20))
	return nil
}

type tfrScheme int

const (
	schemeStatic tfrScheme = iota
	schemePC
	schemeXor
)

// tfrCurve computes the cumulative true/false detection trade-off and
// samples it at 10% and 20% of true mispredictions delayed.
func tfrCurve(evs []ooo.MispEvent, scheme tfrScheme) (at10, at20 float64) {
	type cat struct{ trues, falses int }
	cats := make(map[uint64]*cat)
	tfr := bpred.NewTFR(16)
	for _, e := range evs {
		var key uint64
		switch scheme {
		case schemeStatic:
			key = e.PC
		case schemePC:
			idx := tfr.Index(e.PC, 0)
			key = uint64(tfr.Pattern(idx))
			tfr.Record(idx, e.False)
		case schemeXor:
			idx := tfr.Index(e.PC, e.Hist)
			key = uint64(tfr.Pattern(idx))<<32 | 1 // patterns share a namespace
			tfr.Record(idx, e.False)
		}
		c := cats[key]
		if c == nil {
			c = &cat{}
			cats[key] = c
		}
		if e.False {
			c.falses++
		} else {
			c.trues++
		}
	}
	list := make([]*cat, 0, len(cats))
	totalT, totalF := 0, 0
	//lint:ignore detrange sorted below with a full tie-break (the fig10 fix)
	for _, c := range cats {
		list = append(list, c)
		totalT += c.trues
		totalF += c.falses
	}
	if totalF == 0 {
		return 0, 0
	}
	// Sort by false misprediction rate, highest first. Ties break on the
	// category counts: list comes from map iteration, and the cumulative
	// sampling below must not depend on that order. Categories equal in
	// all three keys are interchangeable for the prefix sums.
	sort.Slice(list, func(i, j int) bool {
		ri := float64(list[i].falses) / float64(list[i].falses+list[i].trues)
		rj := float64(list[j].falses) / float64(list[j].falses+list[j].trues)
		if ri != rj {
			return ri > rj
		}
		if list[i].falses != list[j].falses {
			return list[i].falses > list[j].falses
		}
		return list[i].trues > list[j].trues
	})
	cumT, cumF := 0, 0
	set10, set20 := false, false
	for _, c := range list {
		nextT := cumT + c.trues
		if totalT > 0 && float64(nextT)/float64(totalT) > 0.10 && !set10 {
			at10, set10 = float64(cumF)/float64(totalF), true
		}
		if totalT > 0 && float64(nextT)/float64(totalT) > 0.20 && !set20 {
			at20, set20 = float64(cumF)/float64(totalF), true
		}
		cumT, cumF = nextT, cumF+c.falses
	}
	// If the true-misprediction budget was never exceeded, every false
	// misprediction is caught.
	if !set10 {
		at10 = 1
	}
	if !set20 {
		at20 = 1
	}
	return at10, at20
}

func wlFig12(c *wctx) error {
	plain, err := c.detailed(ooo.Config{Machine: ooo.CI, WindowSize: table2Window(c.o)})
	if err != nil {
		return err
	}
	oh, err := c.detailed(ooo.Config{Machine: ooo.CI, WindowSize: table2Window(c.o), OracleGlobalHistory: true})
	if err != nil {
		return err
	}
	c.row(0, c.w.Name, fmtF(plain.Stats.IPC()), fmtF(oh.Stats.IPC()),
		stats.Percent(stats.PctImprove(plain.Stats.IPC(), oh.Stats.IPC())))
	return nil
}

func wlFig13(c *wctx) error {
	base, err := c.detailed(ooo.Config{Machine: ooo.Base, WindowSize: table2Window(c.o)})
	if err != nil {
		return err
	}
	ipc := map[ooo.Repredict]float64{}
	for _, rp := range []ooo.Repredict{ooo.RepredictNone, ooo.RepredictHeuristic, ooo.RepredictOracle} {
		r, err := c.detailed(ooo.Config{Machine: ooo.CI, WindowSize: table2Window(c.o), Repredict: rp})
		if err != nil {
			return err
		}
		ipc[rp] = r.Stats.IPC()
	}
	b := base.Stats.IPC()
	c.row(0, c.w.Name, fmtF(b), fmtF(ipc[ooo.RepredictNone]), fmtF(ipc[ooo.RepredictHeuristic]), fmtF(ipc[ooo.RepredictOracle]),
		stats.Percent(stats.PctImprove(b, ipc[ooo.RepredictNone])),
		stats.Percent(stats.PctImprove(b, ipc[ooo.RepredictHeuristic])),
		stats.Percent(stats.PctImprove(b, ipc[ooo.RepredictOracle])))
	return nil
}

func wlFig14(c *wctx) error {
	base, err := c.detailed(ooo.Config{Machine: ooo.Base, WindowSize: table2Window(c.o)})
	if err != nil {
		return err
	}
	ipc := map[int]float64{}
	for _, seg := range []int{1, 4, 16} {
		r, err := c.detailed(ooo.Config{Machine: ooo.CI, WindowSize: table2Window(c.o), SegmentSize: seg})
		if err != nil {
			return err
		}
		ipc[seg] = r.Stats.IPC()
	}
	b := base.Stats.IPC()
	c.row(0, c.w.Name, fmtF(b), fmtF(ipc[1]), fmtF(ipc[4]), fmtF(ipc[16]),
		stats.Percent(stats.PctImprove(b, ipc[1])),
		stats.Percent(stats.PctImprove(b, ipc[4])),
		stats.Percent(stats.PctImprove(b, ipc[16])))
	return nil
}

// fig17Combos are the reconvergence sources of Figure 17, in column
// order.
var fig17Combos = []struct {
	name string
	rc   ooo.Reconv
}{
	{"return", ooo.Reconv{Return: true}},
	{"loop", ooo.Reconv{Loop: true}},
	{"ltb", ooo.Reconv{Ltb: true}},
	{"return/ltb", ooo.Reconv{Return: true, Ltb: true}},
	{"loop/ltb", ooo.Reconv{Loop: true, Ltb: true}},
	{"return/loop", ooo.Reconv{Return: true, Loop: true}},
	{"return/loop/ltb", ooo.Reconv{Return: true, Loop: true, Ltb: true}},
	{"assoc search", ooo.Reconv{Assoc: true}},
	{"CI (postdom)", ooo.Reconv{PostDom: true}},
}

func wlFig17(c *wctx) error {
	base, err := c.detailed(ooo.Config{Machine: ooo.Base, WindowSize: table2Window(c.o)})
	if err != nil {
		return err
	}
	row := Row{c.w.Name}
	for _, combo := range fig17Combos {
		r, err := c.detailed(ooo.Config{Machine: ooo.CI, WindowSize: table2Window(c.o), Reconv: combo.rc})
		if err != nil {
			return err
		}
		row = append(row, stats.Percent(stats.PctImprove(base.Stats.IPC(), r.Stats.IPC())))
	}
	c.row(0, row...)
	return nil
}
