package exp

import (
	"fmt"
	"sort"

	"cisim/internal/bpred"
	"cisim/internal/ooo"
	"cisim/internal/plot"
	"cisim/internal/stats"
	"cisim/internal/workloads"
)

func init() {
	register(&Experiment{
		ID:    "fig5",
		Title: "Figure 5: BASE / CI / CI-I IPC for three window sizes",
		Paper: "CI clearly above BASE for the less predictable workloads; CI-I only 1-4% above CI",
		Run:   runFig5,
	})
	register(&Experiment{
		ID:    "fig6",
		Title: "Figure 6: percent IPC improvement of CI over BASE",
		Paper: "10-30% improvements; go the most, vortex the least; most variation between 128 and 256",
		Run:   runFig6,
	})
	register(&Experiment{
		ID:    "table2",
		Title: "Table 2: restart/redispatch statistics (256-entry window)",
		Paper: "reconvergence present for >60% of mispredictions (less for vortex); removed <14, inserted <20; >50 CI instructions; 2-3 CI reissues from new names",
		Run:   runTable2,
	})
	register(&Experiment{
		ID:    "table3",
		Title: "Table 3: work saved by control independence (256-entry window)",
		Paper: "fetch saved 5-70% of retired instructions; work saved 4-39%; compress extreme, vortex minimal",
		Run:   runTable3,
	})
	register(&Experiment{
		ID:    "table4",
		Title: "Table 4: instruction issues per retired instruction (256-entry window)",
		Paper: "1.04-1.24 without CI, 1.10-2.44 with CI; compress extreme through memory-order violations",
		Run:   runTable4,
	})
	register(&Experiment{
		ID:    "fig8",
		Title: "Figure 8: simple vs optimal preemption (256-entry window)",
		Paper: "simple performs essentially as well as optimal; restarts last only 1-2 cycles",
		Run:   runFig8,
	})
	register(&Experiment{
		ID:    "fig9",
		Title: "Figure 9: branch completion models and false mispredictions (256-entry window)",
		Paper: "spec-C about +10% over non-spec; HFM adds little except for compress (up to 37% under spec)",
		Run:   runFig9,
	})
	register(&Experiment{
		ID:    "fig10",
		Title: "Figure 10: true/false misprediction history (TFR) detection",
		Paper: "delaying 10% of true mispredictions catches 60-95% of false ones with dynamic(xor); static fails on compress",
		Run:   runFig10,
	})
	register(&Experiment{
		ID:    "fig12",
		Title: "Figure 12: impact of oracle global branch history (256-entry window)",
		Paper: "at most plus or minus 5% IPC",
		Run:   runFig12,
	})
	register(&Experiment{
		ID:    "fig13",
		Title: "Figure 13: evaluation of re-predict sequences (256-entry window)",
		Paper: "no re-prediction (CI-NR) forfeits half or more of CI's benefit; CI within 5% of oracle re-prediction except compress",
		Run:   runFig13,
	})
	register(&Experiment{
		ID:    "fig14",
		Title: "Figure 14: ROB segment size (256-entry window)",
		Paper: "4-instruction segments within 5% of 1-instruction; 16-instruction segments cost up to half the CI benefit on irregular control",
		Run:   runFig14,
	})
	register(&Experiment{
		ID:    "fig17",
		Title: "Figure 17: hardware heuristics for reconvergent points (256-entry window)",
		Paper: "return is generally the best single heuristic; combined heuristics reach 1/3 (gcc) to 3/4 (jpeg) of full CI",
		Run:   runFig17,
	})
}

// fig5Windows returns the window sweep for Figure 5/6.
func fig5Windows(o Options) []int {
	if o.Quick {
		return []int{128, 256}
	}
	return []int{128, 256, 512}
}

func runDetailed(w *workloads.Workload, o Options, c ooo.Config) (*ooo.Result, error) {
	p := programFor(w, o)
	return ooo.Run(p, c)
}

func runFig5(o Options) (*Result, error) {
	t := stats.NewTable("Figure 5: IPC with and without control independence",
		"benchmark", "window", "BASE", "CI", "CI-I")
	res := &Result{ID: "fig5", Tables: []*stats.Table{t}}
	machines := []ooo.Machine{ooo.Base, ooo.CI, ooo.CIInstant}
	for _, w := range workloads.All() {
		p := programFor(w, o)
		curves := make([]plot.Series, len(machines))
		for mi, m := range machines {
			curves[mi].Name = m.String()
		}
		for _, win := range fig5Windows(o) {
			row := []interface{}{w.Name, win}
			for mi, mach := range machines {
				r, err := ooo.Run(p, ooo.Config{Machine: mach, WindowSize: win})
				if err != nil {
					return nil, err
				}
				row = append(row, fmtF(r.Stats.IPC()))
				curves[mi].Points = append(curves[mi].Points, plot.Point{X: float64(win), Y: r.Stats.IPC()})
			}
			t.AddRow(row...)
		}
		res.Plots = append(res.Plots, Plot{
			Title:  "Figure 5 (" + w.Name + "): IPC vs window size",
			Series: curves,
		})
	}
	return res, nil
}

func runFig6(o Options) (*Result, error) {
	t := stats.NewTable("Figure 6: percent improvement in IPC due to control independence",
		"benchmark", "window", "CI vs BASE", "CI-I vs BASE")
	for _, w := range workloads.All() {
		p := programFor(w, o)
		for _, win := range fig5Windows(o) {
			base, err := ooo.Run(p, ooo.Config{Machine: ooo.Base, WindowSize: win})
			if err != nil {
				return nil, err
			}
			ci, err := ooo.Run(p, ooo.Config{Machine: ooo.CI, WindowSize: win})
			if err != nil {
				return nil, err
			}
			cii, err := ooo.Run(p, ooo.Config{Machine: ooo.CIInstant, WindowSize: win})
			if err != nil {
				return nil, err
			}
			t.AddRow(w.Name, win,
				stats.Percent(stats.PctImprove(base.Stats.IPC(), ci.Stats.IPC())),
				stats.Percent(stats.PctImprove(base.Stats.IPC(), cii.Stats.IPC())))
		}
	}
	res := &Result{ID: "fig6", Tables: []*stats.Table{t}}
	res.Plots = append(res.Plots, barsFromTable(t,
		"Figure 6: percent improvement over BASE", []int{0, 1}, []int{2, 3}, "%"))
	return res, nil
}

func table2Window(o Options) int {
	if o.Quick {
		return 128
	}
	return 256
}

func runTable2(o Options) (*Result, error) {
	t := stats.NewTable("Table 2: statistics for restart/redispatch sequences",
		"benchmark", "% reconverge", "avg removed CD", "avg inserted CD", "avg CI instr", "avg CI new names", "avg restart cycles")
	for _, w := range workloads.All() {
		r, err := runDetailed(w, o, ooo.Config{Machine: ooo.CI, WindowSize: table2Window(o)})
		if err != nil {
			return nil, err
		}
		s := &r.Stats
		t.AddRow(w.Name,
			stats.Percent(100*s.ReconvRate()),
			stats.Ratio(s.RemovedCD, s.Reconverged),
			stats.Ratio(s.InsertedCD, s.Reconverged),
			stats.Ratio(s.CIInstructions, s.Reconverged),
			stats.Ratio(s.CINewNames, s.Reconverged),
			stats.Ratio(s.RestartCycles, s.Reconverged))
	}
	return &Result{ID: "table2", Tables: []*stats.Table{t}}, nil
}

func runTable3(o Options) (*Result, error) {
	t := stats.NewTable("Table 3: work saved by exploiting control independence (fraction of retired instructions)",
		"benchmark", "fetch saved", "work saved", "work discarded", "had only fetched")
	for _, w := range workloads.All() {
		r, err := runDetailed(w, o, ooo.Config{Machine: ooo.CI, WindowSize: table2Window(o)})
		if err != nil {
			return nil, err
		}
		s := &r.Stats
		t.AddRow(w.Name,
			stats.Percent(100*stats.Ratio(s.FetchSaved, s.Retired)),
			stats.Percent(100*stats.Ratio(s.WorkSaved, s.Retired)),
			stats.Percent(100*stats.Ratio(s.WorkDiscarded, s.Retired)),
			stats.Percent(100*stats.Ratio(s.OnlyFetched, s.Retired)))
	}
	return &Result{ID: "table3", Tables: []*stats.Table{t}}, nil
}

func runTable4(o Options) (*Result, error) {
	t := stats.NewTable("Table 4: instruction issues per retired instruction",
		"benchmark", "noCI total", "noCI mem viol", "CI total", "CI mem viol", "CI reg viol")
	for _, w := range workloads.All() {
		base, err := runDetailed(w, o, ooo.Config{Machine: ooo.Base, WindowSize: table2Window(o)})
		if err != nil {
			return nil, err
		}
		ci, err := runDetailed(w, o, ooo.Config{Machine: ooo.CI, WindowSize: table2Window(o)})
		if err != nil {
			return nil, err
		}
		bs, cs := &base.Stats, &ci.Stats
		t.AddRow(w.Name,
			fmt.Sprintf("%.3f", bs.IssuesPerRetired()),
			fmt.Sprintf("%.4f", stats.Ratio(bs.MemViolations, bs.Retired)),
			fmt.Sprintf("%.3f", cs.IssuesPerRetired()),
			fmt.Sprintf("%.4f", stats.Ratio(cs.MemViolations, cs.Retired)),
			fmt.Sprintf("%.4f", stats.Ratio(cs.RegViolations, cs.Retired)))
	}
	t.Note = "violation columns count root-cause reissues per retired instruction; chains reissue on top"
	return &Result{ID: "table4", Tables: []*stats.Table{t}}, nil
}

func runFig8(o Options) (*Result, error) {
	t := stats.NewTable("Figure 8: simple vs optimal preemption",
		"benchmark", "simple IPC", "optimal IPC", "simple vs optimal", "preemptions", "case-3")
	for _, w := range workloads.All() {
		simple, err := runDetailed(w, o, ooo.Config{Machine: ooo.CI, WindowSize: table2Window(o), Preempt: ooo.PreemptSimple})
		if err != nil {
			return nil, err
		}
		optimal, err := runDetailed(w, o, ooo.Config{Machine: ooo.CI, WindowSize: table2Window(o), Preempt: ooo.PreemptOptimal})
		if err != nil {
			return nil, err
		}
		t.AddRow(w.Name, fmtF(simple.Stats.IPC()), fmtF(optimal.Stats.IPC()),
			stats.Percent(stats.PctImprove(optimal.Stats.IPC(), simple.Stats.IPC())),
			int(optimal.Stats.Preemptions), int(optimal.Stats.Case3Preemptions))
	}
	res := &Result{ID: "fig8", Tables: []*stats.Table{t}}
	res.Plots = append(res.Plots, barsFromTable(t,
		"Figure 8: IPC under the preemption policies", []int{0}, []int{1, 2}, ""))
	return res, nil
}

func runFig9(o Options) (*Result, error) {
	type cmCase struct {
		name string
		cm   ooo.Completion
		hfm  bool
	}
	cases := []cmCase{
		{"non-spec", ooo.NonSpec, false},
		{"spec-D", ooo.SpecD, false},
		{"spec-D-HFM", ooo.SpecD, true},
		{"spec-C", ooo.SpecC, false},
		{"spec-C-HFM", ooo.SpecC, true},
		{"spec", ooo.Spec, false},
		{"spec-HFM", ooo.Spec, true},
	}
	cols := []string{"benchmark"}
	for _, c := range cases {
		cols = append(cols, c.name)
	}
	t := stats.NewTable("Figure 9a: IPC under the branch completion models", cols...)
	d := stats.NewTable("Figure 9b: percent IPC differences",
		"benchmark", "spec-C/non-spec", "spec-D/non-spec", "spec/non-spec",
		"spec-C-HFM/spec-C", "spec-D-HFM/spec-D", "spec-HFM/spec")
	for _, w := range workloads.All() {
		ipc := map[string]float64{}
		row := []interface{}{w.Name}
		for _, c := range cases {
			r, err := runDetailed(w, o, ooo.Config{
				Machine: ooo.CI, WindowSize: table2Window(o),
				Completion: c.cm, HideFalseMispredictions: c.hfm,
			})
			if err != nil {
				return nil, err
			}
			ipc[c.name] = r.Stats.IPC()
			row = append(row, fmtF(r.Stats.IPC()))
		}
		t.AddRow(row...)
		d.AddRow(w.Name,
			stats.Percent(stats.PctImprove(ipc["non-spec"], ipc["spec-C"])),
			stats.Percent(stats.PctImprove(ipc["non-spec"], ipc["spec-D"])),
			stats.Percent(stats.PctImprove(ipc["non-spec"], ipc["spec"])),
			stats.Percent(stats.PctImprove(ipc["spec-C"], ipc["spec-C-HFM"])),
			stats.Percent(stats.PctImprove(ipc["spec-D"], ipc["spec-D-HFM"])),
			stats.Percent(stats.PctImprove(ipc["spec"], ipc["spec-HFM"])))
	}
	// §A.2.2's hedge: confidence-gated completion under the spec model.
	h := stats.NewTable("Figure 9c (§A.2.2): confidence-delayed completion under spec",
		"benchmark", "spec", "spec + confidence delay", "difference")
	for _, w := range workloads.All() {
		plain, err := runDetailed(w, o, ooo.Config{Machine: ooo.CI, WindowSize: table2Window(o), Completion: ooo.Spec})
		if err != nil {
			return nil, err
		}
		hedged, err := runDetailed(w, o, ooo.Config{Machine: ooo.CI, WindowSize: table2Window(o), Completion: ooo.Spec, ConfidenceDelay: true})
		if err != nil {
			return nil, err
		}
		h.AddRow(w.Name, fmtF(plain.Stats.IPC()), fmtF(hedged.Stats.IPC()),
			stats.Percent(stats.PctImprove(plain.Stats.IPC(), hedged.Stats.IPC())))
	}
	h.Note = "the paper's early experiments found confidence-based delay unprofitable (more true mispredictions delayed than false ones prevented)"
	res := &Result{ID: "fig9", Tables: []*stats.Table{t, d, h}}
	res.Plots = append(res.Plots, barsFromTable(d,
		"Figure 9b: percent IPC differences between completion models", []int{0}, []int{1, 2, 3, 4, 5, 6}, "%"))
	return res, nil
}

// runFig10 reproduces the TFR analysis: group mispredictions per static
// branch (static) or per TFR pattern (dynamic), sort groups by false
// misprediction rate, and report the fraction of false mispredictions
// caught when at most 10% / 20% of true mispredictions are delayed.
func runFig10(o Options) (*Result, error) {
	t := stats.NewTable("Figure 10: detecting false mispredictions from true/false history",
		"benchmark", "true misps", "false misps",
		"static @10%T", "static @20%T", "dyn(pc) @10%T", "dyn(pc) @20%T", "dyn(xor) @10%T", "dyn(xor) @20%T")
	for _, w := range workloads.All() {
		r, err := runDetailed(w, o, ooo.Config{
			Machine: ooo.CI, WindowSize: table2Window(o),
			Completion: ooo.Spec, RecordMisps: true,
		})
		if err != nil {
			return nil, err
		}
		evs := r.MispEvents
		var trues, falses int
		for _, e := range evs {
			if e.False {
				falses++
			} else {
				trues++
			}
		}
		s10, s20 := tfrCurve(evs, schemeStatic)
		p10, p20 := tfrCurve(evs, schemePC)
		x10, x20 := tfrCurve(evs, schemeXor)
		t.AddRow(w.Name, trues, falses,
			stats.Percent(100*s10), stats.Percent(100*s20),
			stats.Percent(100*p10), stats.Percent(100*p20),
			stats.Percent(100*x10), stats.Percent(100*x20))
	}
	t.Note = "columns report the fraction of false mispredictions identified when delaying at most 10%/20% of true mispredictions"
	return &Result{ID: "fig10", Tables: []*stats.Table{t}}, nil
}

type tfrScheme int

const (
	schemeStatic tfrScheme = iota
	schemePC
	schemeXor
)

// tfrCurve computes the cumulative true/false detection trade-off and
// samples it at 10% and 20% of true mispredictions delayed.
func tfrCurve(evs []ooo.MispEvent, scheme tfrScheme) (at10, at20 float64) {
	type cat struct{ trues, falses int }
	cats := make(map[uint64]*cat)
	tfr := bpred.NewTFR(16)
	for _, e := range evs {
		var key uint64
		switch scheme {
		case schemeStatic:
			key = e.PC
		case schemePC:
			idx := tfr.Index(e.PC, 0)
			key = uint64(tfr.Pattern(idx))
			tfr.Record(idx, e.False)
		case schemeXor:
			idx := tfr.Index(e.PC, e.Hist)
			key = uint64(tfr.Pattern(idx))<<32 | 1 // patterns share a namespace
			tfr.Record(idx, e.False)
		}
		c := cats[key]
		if c == nil {
			c = &cat{}
			cats[key] = c
		}
		if e.False {
			c.falses++
		} else {
			c.trues++
		}
	}
	list := make([]*cat, 0, len(cats))
	totalT, totalF := 0, 0
	for _, c := range cats {
		list = append(list, c)
		totalT += c.trues
		totalF += c.falses
	}
	if totalF == 0 {
		return 0, 0
	}
	// Sort by false misprediction rate, highest first.
	sort.Slice(list, func(i, j int) bool {
		ri := float64(list[i].falses) / float64(list[i].falses+list[i].trues)
		rj := float64(list[j].falses) / float64(list[j].falses+list[j].trues)
		return ri > rj
	})
	cumT, cumF := 0, 0
	set10, set20 := false, false
	for _, c := range list {
		nextT := cumT + c.trues
		if totalT > 0 && float64(nextT)/float64(totalT) > 0.10 && !set10 {
			at10, set10 = float64(cumF)/float64(totalF), true
		}
		if totalT > 0 && float64(nextT)/float64(totalT) > 0.20 && !set20 {
			at20, set20 = float64(cumF)/float64(totalF), true
		}
		cumT, cumF = nextT, cumF+c.falses
	}
	// If the true-misprediction budget was never exceeded, every false
	// misprediction is caught.
	if !set10 {
		at10 = 1
	}
	if !set20 {
		at20 = 1
	}
	return at10, at20
}

func runFig12(o Options) (*Result, error) {
	t := stats.NewTable("Figure 12: impact of oracle global branch history",
		"benchmark", "timing history IPC", "oracle history IPC", "difference")
	for _, w := range workloads.All() {
		plain, err := runDetailed(w, o, ooo.Config{Machine: ooo.CI, WindowSize: table2Window(o)})
		if err != nil {
			return nil, err
		}
		oh, err := runDetailed(w, o, ooo.Config{Machine: ooo.CI, WindowSize: table2Window(o), OracleGlobalHistory: true})
		if err != nil {
			return nil, err
		}
		t.AddRow(w.Name, fmtF(plain.Stats.IPC()), fmtF(oh.Stats.IPC()),
			stats.Percent(stats.PctImprove(plain.Stats.IPC(), oh.Stats.IPC())))
	}
	return &Result{ID: "fig12", Tables: []*stats.Table{t}}, nil
}

func runFig13(o Options) (*Result, error) {
	t := stats.NewTable("Figure 13: evaluation of re-predictions",
		"benchmark", "base", "CI-NR", "CI", "CI-OR", "CI-NR vs base", "CI vs base", "CI-OR vs base")
	for _, w := range workloads.All() {
		base, err := runDetailed(w, o, ooo.Config{Machine: ooo.Base, WindowSize: table2Window(o)})
		if err != nil {
			return nil, err
		}
		ipc := map[ooo.Repredict]float64{}
		for _, rp := range []ooo.Repredict{ooo.RepredictNone, ooo.RepredictHeuristic, ooo.RepredictOracle} {
			r, err := runDetailed(w, o, ooo.Config{Machine: ooo.CI, WindowSize: table2Window(o), Repredict: rp})
			if err != nil {
				return nil, err
			}
			ipc[rp] = r.Stats.IPC()
		}
		b := base.Stats.IPC()
		t.AddRow(w.Name, fmtF(b), fmtF(ipc[ooo.RepredictNone]), fmtF(ipc[ooo.RepredictHeuristic]), fmtF(ipc[ooo.RepredictOracle]),
			stats.Percent(stats.PctImprove(b, ipc[ooo.RepredictNone])),
			stats.Percent(stats.PctImprove(b, ipc[ooo.RepredictHeuristic])),
			stats.Percent(stats.PctImprove(b, ipc[ooo.RepredictOracle])))
	}
	res := &Result{ID: "fig13", Tables: []*stats.Table{t}}
	res.Plots = append(res.Plots, barsFromTable(t,
		"Figure 13: percent improvement over base", []int{0}, []int{5, 6, 7}, "%"))
	return res, nil
}

func runFig14(o Options) (*Result, error) {
	t := stats.NewTable("Figure 14: varying ROB segment size",
		"benchmark", "base", "seg 1", "seg 4", "seg 16", "seg-1 vs base", "seg-4 vs base", "seg-16 vs base")
	for _, w := range workloads.All() {
		base, err := runDetailed(w, o, ooo.Config{Machine: ooo.Base, WindowSize: table2Window(o)})
		if err != nil {
			return nil, err
		}
		ipc := map[int]float64{}
		for _, seg := range []int{1, 4, 16} {
			r, err := runDetailed(w, o, ooo.Config{Machine: ooo.CI, WindowSize: table2Window(o), SegmentSize: seg})
			if err != nil {
				return nil, err
			}
			ipc[seg] = r.Stats.IPC()
		}
		b := base.Stats.IPC()
		t.AddRow(w.Name, fmtF(b), fmtF(ipc[1]), fmtF(ipc[4]), fmtF(ipc[16]),
			stats.Percent(stats.PctImprove(b, ipc[1])),
			stats.Percent(stats.PctImprove(b, ipc[4])),
			stats.Percent(stats.PctImprove(b, ipc[16])))
	}
	res := &Result{ID: "fig14", Tables: []*stats.Table{t}}
	res.Plots = append(res.Plots, barsFromTable(t,
		"Figure 14: percent improvement over base by segment size", []int{0}, []int{5, 6, 7}, "%"))
	return res, nil
}

func runFig17(o Options) (*Result, error) {
	combos := []struct {
		name string
		rc   ooo.Reconv
	}{
		{"return", ooo.Reconv{Return: true}},
		{"loop", ooo.Reconv{Loop: true}},
		{"ltb", ooo.Reconv{Ltb: true}},
		{"return/ltb", ooo.Reconv{Return: true, Ltb: true}},
		{"loop/ltb", ooo.Reconv{Loop: true, Ltb: true}},
		{"return/loop", ooo.Reconv{Return: true, Loop: true}},
		{"return/loop/ltb", ooo.Reconv{Return: true, Loop: true, Ltb: true}},
		{"assoc search", ooo.Reconv{Assoc: true}},
		{"CI (postdom)", ooo.Reconv{PostDom: true}},
	}
	cols := []string{"benchmark"}
	for _, c := range combos {
		cols = append(cols, c.name)
	}
	t := stats.NewTable("Figure 17: percent improvement over BASE, heuristic reconvergence", cols...)
	for _, w := range workloads.All() {
		base, err := runDetailed(w, o, ooo.Config{Machine: ooo.Base, WindowSize: table2Window(o)})
		if err != nil {
			return nil, err
		}
		row := []interface{}{w.Name}
		for _, c := range combos {
			r, err := runDetailed(w, o, ooo.Config{Machine: ooo.CI, WindowSize: table2Window(o), Reconv: c.rc})
			if err != nil {
				return nil, err
			}
			row = append(row, stats.Percent(stats.PctImprove(base.Stats.IPC(), r.Stats.IPC())))
		}
		t.AddRow(row...)
	}
	res := &Result{ID: "fig17", Tables: []*stats.Table{t}}
	res.Plots = append(res.Plots, barsFromTable(t,
		"Figure 17: percent improvement over BASE by reconvergence source", []int{0}, []int{1, 2, 3, 4, 5, 6, 7, 8, 9}, "%"))
	return res, nil
}
