package exp

// Journal serialization for experiment partials. The run journal
// (internal/runner) stores opaque payloads; this file is where the
// experiment layer defines what a payload is for its jobs: a Partial
// with table cells pre-rendered to strings. Pre-rendering matters —
// stats.Table formats cells by dynamic type on insertion (int vs float64
// vs Percent render differently), and JSON cannot round-trip those
// types. Strings pass through stats.FormatCell unchanged, so a Partial
// replayed from a journal merges into byte-identical output.

import (
	"encoding/json"
	"fmt"

	"cisim/internal/metrics"
	"cisim/internal/runner"
	"cisim/internal/stats"
	"cisim/internal/workloads"
)

// journalVersion salts job addresses; bump it when the payload encoding
// changes so stale journals miss instead of decoding garbage.
const journalVersion = "exp.v2"

// JobAddress returns the content address identifying one (experiment,
// workload) job at a scale, for journal keying. It hashes the workload's
// generated assembly source, so editing a workload (or changing scale)
// invalidates its journal entries rather than resuming stale results.
func JobAddress(e *Experiment, w *workloads.Workload, o Options) string {
	return runner.Address("job", journalVersion, e.ID, w.Name,
		fmt.Sprintf("quick=%t metrics=%t", o.Quick, o.Metrics), w.Source(o.iters(w)))
}

// journalPartial is the serialized form of a Partial.
type journalPartial struct {
	Rows    [][][]string      `json:"rows,omitempty"`
	Plots   []Plot            `json:"plots,omitempty"`
	Instrs  uint64            `json:"instrs,omitempty"`
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// EncodePartial serializes a Partial for the run journal.
func EncodePartial(p *Partial) (json.RawMessage, error) {
	jp := journalPartial{Plots: p.Plots, Instrs: p.Instrs, Metrics: p.Metrics}
	for _, rows := range p.Rows {
		out := make([][]string, len(rows))
		for i, row := range rows {
			cells := make([]string, len(row))
			for j, c := range row {
				cells[j] = stats.FormatCell(c)
			}
			out[i] = cells
		}
		jp.Rows = append(jp.Rows, out)
	}
	return json.Marshal(jp)
}

// DecodePartial reconstructs a journaled Partial. Cells come back as
// strings, which stats.Table renders verbatim — identical to what the
// original cells rendered to.
func DecodePartial(data json.RawMessage) (*Partial, error) {
	var jp journalPartial
	if err := json.Unmarshal(data, &jp); err != nil {
		return nil, fmt.Errorf("exp: decoding journaled partial: %w", err)
	}
	p := &Partial{Plots: jp.Plots, Instrs: jp.Instrs, Metrics: jp.Metrics}
	for _, rows := range jp.Rows {
		out := make([]Row, len(rows))
		for i, cells := range rows {
			row := make(Row, len(cells))
			for j, c := range cells {
				row[j] = c
			}
			out[i] = row
		}
		p.Rows = append(p.Rows, out)
	}
	return p, nil
}
