package plot

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one value in a bar chart.
type Bar struct {
	Name  string
	Value float64
}

// BarGroup is a labeled cluster of bars (one benchmark's bars in the
// paper's grouped bar figures).
type BarGroup struct {
	Label string
	Bars  []Bar
}

// Bars renders grouped horizontal bars, the shape of the paper's
// percent-improvement figures (6, 8, 9, 13, 14, 17). Bars scale to the
// largest magnitude across all groups; negative values extend with '-'
// instead of '='. The numeric value is printed after each bar, with the
// given unit suffix ("%" for improvement charts, "" for IPC).
func Bars(title string, groups []BarGroup, width int, unit string) string {
	if width < 20 {
		width = 20
	}
	maxAbs := 0.0
	labelW, nameW := 0, 0
	for _, g := range groups {
		if len(g.Label) > labelW {
			labelW = len(g.Label)
		}
		for _, b := range g.Bars {
			maxAbs = math.Max(maxAbs, math.Abs(b.Value))
			if len(b.Name) > nameW {
				nameW = len(b.Name)
			}
		}
	}
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	if maxAbs == 0 {
		maxAbs = 1
	}
	for gi, g := range groups {
		if gi > 0 {
			sb.WriteByte('\n')
		}
		for bi, b := range g.Bars {
			label := ""
			if bi == 0 {
				label = g.Label
			}
			n := int(math.Round(math.Abs(b.Value) / maxAbs * float64(width)))
			ch := "="
			if b.Value < 0 {
				ch = "-"
			}
			fmt.Fprintf(&sb, "%-*s  %-*s |%s %.1f%s\n",
				labelW, label, nameW, b.Name, strings.Repeat(ch, n), b.Value, unit)
		}
	}
	return sb.String()
}
