package plot

import (
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	s := []Series{
		{Name: "oracle", Points: []Point{{16, 2}, {64, 6}, {256, 10}, {512, 12}}},
		{Name: "base", Points: []Point{{16, 2}, {64, 4}, {256, 5}, {512, 5}}},
	}
	out := Lines("IPC vs window", s, 50, 12)
	for _, want := range []string{"IPC vs window", "oracle", "base", "o", "*", "16", "512", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 12 grid rows + axis + ticks + 2 legend = 17
	if len(lines) != 17 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// The oracle curve must end higher (earlier grid row) than base.
	oRow, bRow := -1, -1
	for i, l := range lines {
		if idx := strings.LastIndexByte(l, 'o'); idx > 40 && oRow < 0 && strings.Contains(l, "|") {
			oRow = i
		}
		if idx := strings.LastIndexByte(l, '*'); idx > 40 && bRow < 0 && strings.Contains(l, "|") {
			bRow = i
		}
	}
	if oRow < 0 || bRow < 0 || oRow >= bRow {
		t.Errorf("curve endpoints wrong: oracle row %d, base row %d\n%s", oRow, bRow, out)
	}
}

func TestLinesEmpty(t *testing.T) {
	out := Lines("empty", nil, 40, 8)
	if !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %q", out)
	}
	out = Lines("flat", []Series{{Name: "x", Points: []Point{{1, 1}}}}, 40, 8)
	if !strings.Contains(out, "no data") {
		t.Errorf("single-x plot should report no data: %q", out)
	}
}

func TestMinimumDimensions(t *testing.T) {
	s := []Series{{Name: "a", Points: []Point{{1, 1}, {2, 2}}}}
	out := Lines("tiny", s, 1, 1)
	if len(out) == 0 {
		t.Fatal("empty output")
	}
}

func TestGeometricDetection(t *testing.T) {
	geo := []Series{{Points: []Point{{16, 1}, {32, 2}, {64, 3}, {128, 4}}}}
	if !geometric(geo) {
		t.Error("powers of two should be geometric")
	}
	lin := []Series{{Points: []Point{{1, 1}, {2, 2}, {3, 3}, {4, 4}}}}
	if geometric(lin) {
		t.Error("linear xs should not be geometric")
	}
}

func TestManySeriesMarkers(t *testing.T) {
	var s []Series
	for i := 0; i < 10; i++ {
		s = append(s, Series{Name: string(rune('a' + i)),
			Points: []Point{{1, float64(i)}, {2, float64(i + 1)}}})
	}
	out := Lines("many", s, 40, 10)
	if !strings.Contains(out, "a") || !strings.Contains(out, "j") {
		t.Error("legend incomplete")
	}
}
