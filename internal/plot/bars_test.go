package plot

import (
	"strings"
	"testing"
)

func TestBarsBasic(t *testing.T) {
	out := Bars("title", []BarGroup{
		{Label: "xgcc", Bars: []Bar{{"CI", 20.0}, {"CI-I", 40.0}}},
		{Label: "xgo", Bars: []Bar{{"CI", 80.0}}},
	}, 40, "%")
	if !strings.HasPrefix(out, "title\n") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Group label appears only on the first bar of each group.
	if !strings.HasPrefix(lines[1], "xgcc") || strings.HasPrefix(lines[2], "xgcc") {
		t.Errorf("group labelling wrong:\n%s", out)
	}
	// The largest value spans the full width; half the value half the bar.
	count := func(l string) int { return strings.Count(l, "=") }
	if count(lines[4]) != 40 {
		t.Errorf("max bar should span width 40, got %d:\n%s", count(lines[4]), out)
	}
	if c := count(lines[1]); c != 10 {
		t.Errorf("20%% of 80%% max should be 10 columns, got %d", c)
	}
	if !strings.Contains(lines[1], "20.0%") {
		t.Errorf("value suffix missing: %q", lines[1])
	}
}

func TestBarsNegativeAndZero(t *testing.T) {
	out := Bars("t", []BarGroup{
		{Label: "a", Bars: []Bar{{"x", -50.0}, {"y", 100.0}, {"z", 0}}},
	}, 20, "%")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "----------") || strings.Contains(lines[1], "=") {
		t.Errorf("negative bar should use '-': %q", lines[1])
	}
	if strings.Contains(lines[3], "=") || strings.Contains(lines[3], "-") {
		t.Errorf("zero bar should be empty: %q", lines[3])
	}
	// All-zero input must not divide by zero.
	_ = Bars("t", []BarGroup{{Label: "a", Bars: []Bar{{"x", 0}}}}, 20, "")
}
