// Package plot renders simple ASCII line charts for the experiment CLI:
// the paper's figures are IPC-versus-window curves, and a terminal plot
// makes the crossover shapes visible without leaving the shell.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named curve.
type Series struct {
	Name   string
	Points []Point
}

// markers distinguish series in the grid.
var markers = []byte{'o', '*', '+', 'x', '#', '@', '%', '&'}

// Lines renders the series into a width×height character grid with Y axis
// labels, X tick labels, and a legend.
func Lines(title string, series []Series, width, height int) string {
	if width < 24 {
		width = 24
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // Y axis anchored at 0 (IPC charts)
	for _, s := range series {
		for _, p := range s.Points {
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			maxY = math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(minX, 1) || maxX == minX {
		return title + "\n(no data)\n"
	}
	if maxY <= minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	// Use log-scale X when the samples look geometric (window sweeps).
	logX := geometric(series)
	xpos := func(x float64) int {
		lo, hi := minX, maxX
		if logX {
			x, lo, hi = math.Log2(x), math.Log2(minX), math.Log2(maxX)
		}
		return int(math.Round((x - lo) / (hi - lo) * float64(width-1)))
	}
	ypos := func(y float64) int {
		return height - 1 - int(math.Round((y-minY)/(maxY-minY)*float64(height-1)))
	}

	for si, s := range series {
		mk := markers[si%len(markers)]
		pts := append([]Point(nil), s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		// Linear interpolation between samples for a continuous look.
		for i := 0; i+1 < len(pts); i++ {
			x0, x1 := xpos(pts[i].X), xpos(pts[i+1].X)
			for c := x0; c <= x1; c++ {
				var frac float64
				if x1 > x0 {
					frac = float64(c-x0) / float64(x1-x0)
				}
				y := pts[i].Y + frac*(pts[i+1].Y-pts[i].Y)
				rr := ypos(y)
				if rr >= 0 && rr < height {
					ch := byte('.')
					if c == x0 || c == x1 {
						ch = mk
					}
					if grid[rr][c] == ' ' || ch != '.' {
						grid[rr][c] = ch
					}
				}
			}
		}
		if len(pts) == 1 {
			grid[ypos(pts[0].Y)][xpos(pts[0].X)] = mk
		}
	}

	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	for i, row := range grid {
		yv := maxY - float64(i)/float64(height-1)*(maxY-minY)
		fmt.Fprintf(&b, "%6.1f |%s\n", yv, string(row))
	}
	b.WriteString("       +" + strings.Repeat("-", width) + "\n")
	// X tick labels at the sample positions of the first series.
	tick := make([]byte, width+8)
	for i := range tick {
		tick[i] = ' '
	}
	if len(series) > 0 {
		for _, p := range series[0].Points {
			lbl := trimFloat(p.X)
			c := xpos(p.X)
			for j := 0; j < len(lbl) && c+j < len(tick); j++ {
				tick[c+j] = lbl[j]
			}
		}
	}
	b.WriteString("        " + strings.TrimRight(string(tick), " ") + "\n")
	for si, s := range series {
		fmt.Fprintf(&b, "        %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.1f", v)
}

// geometric reports whether the X samples grow multiplicatively.
func geometric(series []Series) bool {
	for _, s := range series {
		if len(s.Points) < 3 {
			continue
		}
		xs := make([]float64, len(s.Points))
		for i, p := range s.Points {
			xs[i] = p.X
		}
		sort.Float64s(xs)
		if xs[0] <= 0 {
			return false
		}
		r1 := xs[1] / xs[0]
		rn := xs[len(xs)-1] / xs[len(xs)-2]
		return r1 > 1.5 && rn > 1.5
	}
	return false
}
