// Package emu implements the functional (architectural) emulator for the
// simulator ISA. It executes programs instruction by instruction, producing
// the dynamic instruction stream that drives the trace-based idealized
// study, serves as the golden reference for the detailed execution-driven
// simulator, and — via State.Fork — executes mispredicted paths on an
// isolated copy of architectural state.
package emu

import (
	"errors"
	"fmt"

	"cisim/internal/isa"
	"cisim/internal/mem"
	"cisim/internal/prog"
)

// ErrLimit is returned by Run when the instruction budget is exhausted
// before the program halts.
var ErrLimit = errors.New("emu: instruction limit reached")

// Fault describes an execution error (bad PC, invalid instruction).
type Fault struct {
	PC  uint64
	Why string
}

func (f *Fault) Error() string { return fmt.Sprintf("emu: fault at %#x: %s", f.PC, f.Why) }

// Step records the architectural effect of one executed instruction. The
// trace generator and the simulators consume these records.
type Step struct {
	PC     uint64
	Inst   isa.Inst
	NextPC uint64
	Taken  bool   // conditional branches: direction
	EA     uint64 // loads/stores: effective address
	Value  uint64 // loads: loaded value; stores: stored value; ALU: result
	Halt   bool
}

// State is a complete architectural machine state.
type State struct {
	Prog   *prog.Program
	PC     uint64
	Regs   [isa.NumRegs]uint64
	Mem    *mem.Memory
	Halted bool

	// InstCount counts instructions executed through this State
	// (inherited counts are kept by Fork so wrong-path lengths can be
	// measured relative to the fork point).
	InstCount uint64
}

// New loads a program: the data image is written to a fresh memory, the PC
// set to the entry point, and the stack pointer initialized.
func New(p *prog.Program) *State {
	s := &State{Prog: p, PC: p.Entry, Mem: mem.New()}
	for _, seg := range p.Data {
		s.Mem.WriteBytes(seg.Addr, seg.Bytes)
	}
	s.Regs[isa.RSP] = prog.StackTop
	return s
}

// Fork returns an isolated copy of the state: registers are copied and
// memory is forked copy-on-write. Used to execute wrong paths.
func (s *State) Fork() *State {
	c := *s
	c.Mem = s.Mem.Fork()
	return &c
}

// ForkInto is Fork for a hot loop: instead of allocating a state and
// re-snapshotting the page table per speculative episode, it rewinds view
// (an overlay of s.Mem, see mem.NewOverlay) and overwrites scratch with a
// register-level copy of s backed by it. The returned state is scratch.
// Only one ForkInto fork of s is live at a time; the next call recycles
// the view.
func (s *State) ForkInto(scratch *State, view *mem.Memory) *State {
	view.Reset()
	*scratch = *s
	scratch.Mem = view
	return scratch
}

// Reg reads an architectural register, honouring the hardwired zero.
func (s *State) Reg(r isa.Reg) uint64 {
	if r == isa.RZero {
		return 0
	}
	return s.Regs[r]
}

// SetReg writes an architectural register; writes to R0 are discarded.
func (s *State) SetReg(r isa.Reg, v uint64) {
	if r != isa.RZero {
		s.Regs[r] = v
	}
}

// Step executes one instruction and returns its architectural effects.
// Stepping a halted state returns a Halt step without advancing.
func (s *State) Step() (Step, error) {
	var st Step
	err := s.StepInto(&st)
	return st, err
}

// StepInto is Step writing its record into caller-owned storage, so a hot
// loop reusing one buffer pays a single struct store per instruction
// instead of a return-value copy plus an append. The record is fully
// overwritten.
func (s *State) StepInto(out *Step) error {
	if s.Halted {
		*out = Step{PC: s.PC, Halt: true}
		return nil
	}
	in, ok := s.Prog.InstAt(s.PC)
	if !ok {
		*out = Step{}
		return &Fault{s.PC, "pc outside code image"}
	}
	st := Step{PC: s.PC, Inst: in, NextPC: s.PC + 4}

	switch isa.ClassOf(in.Op) {
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv:
		v := EvalALU(in, s.Reg(in.Rs1), s.Reg(in.Rs2))
		s.SetReg(in.Rd, v)
		st.Value = v
	case isa.ClassLoad:
		ea := EffAddr(in, s.Reg(in.Rs1))
		var v uint64
		if in.Op == isa.LB {
			v = uint64(s.Mem.Read8(ea))
		} else {
			v = s.Mem.Read64(ea)
		}
		s.SetReg(in.Rd, v)
		st.EA, st.Value = ea, v
	case isa.ClassStore:
		ea := EffAddr(in, s.Reg(in.Rs1))
		v := s.Reg(in.Rs2)
		if in.Op == isa.SB {
			s.Mem.Write8(ea, byte(v))
		} else {
			s.Mem.Write64(ea, v)
		}
		st.EA, st.Value = ea, v
	case isa.ClassCondBr:
		taken := EvalBranch(in, s.Reg(in.Rs1), s.Reg(in.Rs2))
		st.Taken = taken
		if taken {
			st.NextPC = in.BranchTarget(s.PC)
		}
	case isa.ClassJump:
		st.NextPC = in.Target
	case isa.ClassCall:
		s.SetReg(isa.RLink, s.PC+4)
		st.NextPC = in.Target
		st.Value = s.PC + 4
	case isa.ClassIndJump:
		st.NextPC = s.Reg(in.Rs1)
	case isa.ClassIndCall:
		target := s.Reg(in.Rs1)
		s.SetReg(in.Rd, s.PC+4)
		st.NextPC = target
		st.Value = s.PC + 4
	case isa.ClassReturn:
		st.NextPC = s.Reg(isa.RLink)
	case isa.ClassHalt:
		s.Halted = true
		st.Halt = true
		st.NextPC = s.PC
		s.InstCount++
		*out = st
		return nil
	}

	s.PC = st.NextPC
	s.InstCount++
	*out = st
	return nil
}

// StepBlock executes up to len(buf) instructions, writing one Step record
// per instruction into buf, and returns how many were recorded. The block
// ends early — after recording the terminating instruction — at any
// control transfer (branch, jump, call, return, halt), so a caller
// batching straight-line work still observes every control decision at a
// block boundary, with memory exactly as of that instruction (control
// instructions write no memory). Reusing one buffer across calls
// amortizes the per-instruction caller/emulator round trip and the second
// decode the caller would otherwise pay.
func (s *State) StepBlock(buf []Step) (int, error) {
	for n := 0; n < len(buf); n++ {
		st := &buf[n]
		if err := s.StepInto(st); err != nil {
			return n, err
		}
		if st.Halt {
			return n + 1, nil
		}
		switch isa.ClassOf(st.Inst.Op) {
		case isa.ClassALU, isa.ClassMul, isa.ClassDiv, isa.ClassLoad, isa.ClassStore:
			// Straight-line: keep going.
		default:
			return n + 1, nil
		}
	}
	return len(buf), nil
}

// Run executes until the program halts or max instructions have executed.
// It returns the number of instructions executed, and ErrLimit if the
// budget ran out first.
func (s *State) Run(max uint64) (uint64, error) {
	start := s.InstCount
	for !s.Halted {
		if s.InstCount-start >= max {
			return s.InstCount - start, ErrLimit
		}
		if _, err := s.Step(); err != nil {
			return s.InstCount - start, err
		}
	}
	return s.InstCount - start, nil
}
