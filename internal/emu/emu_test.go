package emu

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cisim/internal/asm"
	"cisim/internal/isa"
)

func run(t *testing.T, src string, max uint64) *State {
	t.Helper()
	s := New(asm.MustAssemble(src))
	if _, err := s.Run(max); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return s
}

func TestCountingLoop(t *testing.T) {
	s := run(t, `
		main:
			li r1, 10
			li r2, 0
		loop:
			addi r2, r2, 1
			addi r1, r1, -1
			bne r1, r0, loop
			halt
	`, 1000)
	if s.Reg(2) != 10 {
		t.Errorf("r2 = %d, want 10", s.Reg(2))
	}
	// 2 setup + 10*3 loop + 1 halt
	if s.InstCount != 33 {
		t.Errorf("instruction count = %d, want 33", s.InstCount)
	}
}

func TestArithmetic(t *testing.T) {
	s := run(t, `
		main:
			li r1, 7
			li r2, -3
			add r3, r1, r2     ; 4
			sub r4, r1, r2     ; 10
			mul r5, r1, r2     ; -21
			div r6, r1, r2     ; -2
			rem r7, r1, r2     ; 1
			and r8, r1, r2     ; 5
			or  r9, r1, r2     ; -3
			xor r10, r1, r2    ; -8
			slt r11, r2, r1    ; 1
			sltu r12, r2, r1   ; 0 (as unsigned, -3 is huge)
			sll r13, r1, r1    ; 7<<7 = 896
			srl r14, r2, r1    ; huge
			sra r15, r2, r1    ; -1
			halt
	`, 100)
	neg := func(x int64) uint64 { return uint64(x) }
	want := map[isa.Reg]uint64{
		3: 4, 4: 10, 5: neg(-21), 6: neg(-2), 7: 1,
		8: 5, 9: neg(-1), 10: neg(-6), 11: 1, 12: 0,
		13: 896, 14: neg(-3) >> 7, 15: neg(-1),
	}
	for r, v := range want {
		if got := s.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, int64(got), int64(v))
		}
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	if divSigned(5, 0) != 0 {
		t.Error("div by zero should be 0")
	}
	if remSigned(5, 0) != 5 {
		t.Error("rem by zero should be dividend")
	}
	minInt := uint64(1) << 63
	negOne := ^uint64(0)
	if divSigned(minInt, negOne) != minInt {
		t.Error("overflowing div should return MinInt64")
	}
	if remSigned(minInt, negOne) != 0 {
		t.Error("overflowing rem should return 0")
	}
}

func TestMemoryOps(t *testing.T) {
	s := run(t, `
		.data
		buf: .word 0x1122334455667788
		.text
		main:
			la r1, buf
			ld r2, 0(r1)
			lb r3, 0(r1)       ; low byte, zero-extended
			lb r4, 7(r1)
			li r5, -1
			st r5, 8(r1)
			ld r6, 8(r1)
			sb r5, 16(r1)
			lb r7, 16(r1)
			ld r8, 16(r1)      ; only one byte was written
			halt
	`, 100)
	if s.Reg(2) != 0x1122334455667788 {
		t.Errorf("ld = %#x", s.Reg(2))
	}
	if s.Reg(3) != 0x88 {
		t.Errorf("lb low = %#x, want 0x88 (zero-extended)", s.Reg(3))
	}
	if s.Reg(4) != 0x11 {
		t.Errorf("lb high = %#x", s.Reg(4))
	}
	if s.Reg(6) != ^uint64(0) {
		t.Errorf("st/ld round trip = %#x", s.Reg(6))
	}
	if s.Reg(7) != 0xff {
		t.Errorf("sb/lb = %#x", s.Reg(7))
	}
	if s.Reg(8) != 0xff {
		t.Errorf("sb wrote more than one byte: %#x", s.Reg(8))
	}
}

func TestCallReturn(t *testing.T) {
	s := run(t, `
		main:
			li r1, 5
			call double
			call double
			halt
		double:
			add r1, r1, r1
			ret
	`, 100)
	if s.Reg(1) != 20 {
		t.Errorf("r1 = %d, want 20", s.Reg(1))
	}
}

func TestIndirectCallAndJump(t *testing.T) {
	s := run(t, `
		.data
		table: .addr case0, case1
		.text
		main:
			la r1, fn
			jalr ra, r1         ; indirect call
			; select case1 via jump table
			la r2, table
			ld r3, 8(r2)
			jr r3 [case0, case1]
		case0:
			li r4, 100
			halt
		case1:
			li r4, 200
			halt
		fn:
			li r5, 42
			ret
	`, 100)
	if s.Reg(5) != 42 {
		t.Errorf("indirect call result r5 = %d", s.Reg(5))
	}
	if s.Reg(4) != 200 {
		t.Errorf("jump table selected r4 = %d, want 200", s.Reg(4))
	}
}

func TestNestedCalls(t *testing.T) {
	// Callee saves the link register on the stack.
	s := run(t, `
		main:
			li r1, 0
			call outer
			halt
		outer:
			addi sp, sp, -8
			st ra, 0(sp)
			addi r1, r1, 1
			call inner
			ld ra, 0(sp)
			addi sp, sp, 8
			ret
		inner:
			addi r1, r1, 10
			ret
	`, 100)
	if s.Reg(1) != 11 {
		t.Errorf("r1 = %d, want 11", s.Reg(1))
	}
}

func TestR0Hardwired(t *testing.T) {
	s := run(t, `
		main:
			addi r0, r0, 99
			add r1, r0, r0
			halt
	`, 10)
	if s.Reg(0) != 0 || s.Reg(1) != 0 {
		t.Errorf("r0 = %d, r1 = %d; r0 must stay 0", s.Reg(0), s.Reg(1))
	}
}

func TestRunLimit(t *testing.T) {
	s := New(asm.MustAssemble(`
		main:
			jmp main
	`))
	n, err := s.Run(100)
	if err != ErrLimit {
		t.Fatalf("err = %v, want ErrLimit", err)
	}
	if n != 100 {
		t.Errorf("executed %d, want 100", n)
	}
}

func TestFaultOnBadPC(t *testing.T) {
	s := run(t, "main:\n halt", 10)
	s.Halted = false
	s.PC = 0xdead0
	if _, err := s.Step(); err == nil {
		t.Error("stepping bad PC should fault")
	}
	s.PC = 0x1001 // misaligned
	if _, err := s.Step(); err == nil {
		t.Error("stepping misaligned PC should fault")
	}
}

func TestStepRecords(t *testing.T) {
	s := New(asm.MustAssemble(`
		main:
			li r1, 1
			beq r1, r0, main   ; not taken
			bne r1, r0, skip   ; taken
			nop
		skip:
			halt
	`))
	st, _ := s.Step() // li
	if st.Value != 1 {
		t.Errorf("li value = %d", st.Value)
	}
	st, _ = s.Step() // beq, not taken
	if st.Taken || st.NextPC != st.PC+4 {
		t.Errorf("beq step = %+v", st)
	}
	st, _ = s.Step() // bne, taken
	if !st.Taken || st.NextPC != st.PC+8 {
		t.Errorf("bne step = %+v", st)
	}
	st, _ = s.Step() // halt
	if !st.Halt {
		t.Errorf("halt step = %+v", st)
	}
	// Stepping a halted machine is a no-op halt record.
	st, _ = s.Step()
	if !st.Halt {
		t.Error("stepping halted machine should report halt")
	}
}

func TestForkIsolation(t *testing.T) {
	s := New(asm.MustAssemble(`
		main:
			li r1, 1
			st r1, 0x100(r0)
			li r1, 2
			st r1, 0x100(r0)
			halt
	`))
	s.Step()
	s.Step() // stored 1
	f := s.Fork()
	// Parent continues and overwrites memory.
	s.Step()
	s.Step()
	if f.Mem.Read64(0x100) != 1 {
		t.Errorf("fork sees parent's later store: %d", f.Mem.Read64(0x100))
	}
	if f.Reg(1) != 1 {
		t.Errorf("fork register = %d, want 1", f.Reg(1))
	}
	// Fork can execute independently.
	f.Step()
	f.Step()
	if s.Mem.Read64(0x100) != 2 || f.Mem.Read64(0x100) != 2 {
		t.Errorf("divergent memories: parent %d fork %d",
			s.Mem.Read64(0x100), f.Mem.Read64(0x100))
	}
}

// Property: EvalALU of the commutative ops is commutative.
func TestCommutativeOps(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	ops := []isa.Op{isa.ADD, isa.AND, isa.OR, isa.XOR, isa.MUL}
	f := func() bool {
		a, b := r.Uint64(), r.Uint64()
		op := ops[r.Intn(len(ops))]
		in := isa.Inst{Op: op}
		return EvalALU(in, a, b) == EvalALU(in, b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: branch conditions partition correctly (BEQ xor BNE, BLT xor BGE).
func TestBranchDuality(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	f := func() bool {
		a, b := r.Uint64(), r.Uint64()
		if r.Intn(4) == 0 {
			b = a // force equality sometimes
		}
		eq := EvalBranch(isa.Inst{Op: isa.BEQ}, a, b)
		ne := EvalBranch(isa.Inst{Op: isa.BNE}, a, b)
		lt := EvalBranch(isa.Inst{Op: isa.BLT}, a, b)
		ge := EvalBranch(isa.Inst{Op: isa.BGE}, a, b)
		ltu := EvalBranch(isa.Inst{Op: isa.BLTU}, a, b)
		geu := EvalBranch(isa.Inst{Op: isa.BGEU}, a, b)
		return eq != ne && lt != ge && ltu != geu && (a != b || eq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: DIV/REM satisfy a*q + r == a where defined.
func TestDivRemIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	f := func() bool {
		a, b := r.Uint64(), r.Uint64()
		if r.Intn(8) == 0 {
			b = 0
		}
		q := divSigned(a, b)
		rem := remSigned(a, b)
		if b == 0 {
			return q == 0 && rem == a
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return q == a && rem == 0
		}
		return int64(b)*int64(q)+int64(rem) == int64(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestEvalPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s should panic", name)
			}
		}()
		f()
	}
	mustPanic("EvalALU(BEQ)", func() { EvalALU(isa.Inst{Op: isa.BEQ}, 0, 0) })
	mustPanic("EvalBranch(ADD)", func() { EvalBranch(isa.Inst{Op: isa.ADD}, 0, 0) })
}

func TestEvalALUAllOps(t *testing.T) {
	// Exercise every ALU opcode against independently computed results.
	a, b := uint64(0xF0F0F0F0F0F0F0F0), uint64(0x0FF00FF00FF00FF3)
	cases := map[isa.Op]uint64{
		isa.ADD:  a + b,
		isa.SUB:  a - b,
		isa.AND:  a & b,
		isa.OR:   a | b,
		isa.XOR:  a ^ b,
		isa.SLL:  a << (b & 63),
		isa.SRL:  a >> (b & 63),
		isa.SRA:  uint64(int64(a) >> (b & 63)),
		isa.MUL:  a * b,
		isa.SLT:  1, // a negative, b positive
		isa.SLTU: 0, // a > b unsigned
	}
	for op, want := range cases {
		if got := EvalALU(isa.Inst{Op: op}, a, b); got != want {
			t.Errorf("%v = %#x, want %#x", op, got, want)
		}
	}
	neg5 := ^uint64(4) // two's-complement -5
	immCases := map[isa.Op]uint64{
		isa.ADDI: a + neg5,
		isa.ANDI: a & neg5,
		isa.ORI:  a | neg5,
		isa.XORI: a ^ neg5,
		isa.SLTI: 1, // int64(a) is very negative, so a < -5
	}
	for op, want := range immCases {
		if got := EvalALU(isa.Inst{Op: op, Imm: -5}, a, 0); got != want {
			t.Errorf("%v imm = %#x, want %#x", op, got, want)
		}
	}
	shiftCases := map[isa.Op]uint64{
		isa.SLLI: a << 5,
		isa.SRLI: a >> 5,
		isa.SRAI: uint64(int64(a) >> 5),
	}
	for op, want := range shiftCases {
		if got := EvalALU(isa.Inst{Op: op, Imm: 5}, a, 0); got != want {
			t.Errorf("%v shift = %#x, want %#x", op, got, want)
		}
	}
	wantLUI := ^uint64(3<<16 - 1) // -3 << 16 in two's complement
	if got := EvalALU(isa.Inst{Op: isa.LUI, Imm: -3}, 0, 0); got != wantLUI {
		t.Errorf("LUI = %#x, want %#x", got, wantLUI)
	}
	if got := EvalALU(isa.Inst{Op: isa.NOP}, a, b); got != 0 {
		t.Errorf("NOP = %#x", got)
	}
}

func TestFaultError(t *testing.T) {
	f := &Fault{PC: 0x123, Why: "testing"}
	if !strings.Contains(f.Error(), "0x123") || !strings.Contains(f.Error(), "testing") {
		t.Errorf("fault message: %s", f.Error())
	}
}

func TestRunPropagatesFault(t *testing.T) {
	s := New(asm.MustAssemble("main:\n jmp main\n"))
	s.PC = 0xbad00
	if _, err := s.Run(10); err == nil {
		t.Error("Run over bad PC should fault")
	}
}
