package emu

import "cisim/internal/isa"

// This file holds the pure instruction semantics, shared between the
// architectural emulator and the execution-driven timing simulator so both
// always compute identical values (the golden-stream correctness check in
// the ooo package depends on this).

// EvalALU computes the result of a non-memory, non-control instruction
// given its (already read) source operand values. For immediates, b is
// ignored and the instruction's Imm field is used. The PC is needed only by
// link-writing instructions, which are handled by the caller.
func EvalALU(in isa.Inst, a, b uint64) uint64 {
	imm := uint64(int64(in.Imm)) // sign-extended
	switch in.Op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.XOR:
		return a ^ b
	case isa.SLL:
		return a << (b & 63)
	case isa.SRL:
		return a >> (b & 63)
	case isa.SRA:
		return uint64(int64(a) >> (b & 63))
	case isa.SLT:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case isa.SLTU:
		if a < b {
			return 1
		}
		return 0
	case isa.MUL:
		return a * b
	case isa.DIV:
		return divSigned(a, b)
	case isa.REM:
		return remSigned(a, b)
	case isa.ADDI:
		return a + imm
	case isa.ANDI:
		return a & imm
	case isa.ORI:
		return a | imm
	case isa.XORI:
		return a ^ imm
	case isa.SLLI:
		return a << (imm & 63)
	case isa.SRLI:
		return a >> (imm & 63)
	case isa.SRAI:
		return uint64(int64(a) >> (imm & 63))
	case isa.SLTI:
		if int64(a) < int64(imm) {
			return 1
		}
		return 0
	case isa.LUI:
		return uint64(int64(in.Imm)) << 16
	case isa.NOP:
		return 0
	}
	panic("emu: EvalALU on non-ALU instruction " + in.Op.String())
}

// divSigned implements DIV semantics: division by zero yields 0, and the
// one overflowing case (MinInt64 / -1) yields MinInt64, matching typical
// RISC behaviour and avoiding traps.
func divSigned(a, b uint64) uint64 {
	if b == 0 {
		return 0
	}
	x, y := int64(a), int64(b)
	if x == -1<<63 && y == -1 {
		return a
	}
	return uint64(x / y)
}

// remSigned implements REM semantics: remainder by zero yields the
// dividend; the overflowing case yields 0.
func remSigned(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	x, y := int64(a), int64(b)
	if x == -1<<63 && y == -1 {
		return 0
	}
	return uint64(x % y)
}

// EvalBranch decides a conditional branch given its operand values.
func EvalBranch(in isa.Inst, a, b uint64) bool {
	switch in.Op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return int64(a) < int64(b)
	case isa.BGE:
		return int64(a) >= int64(b)
	case isa.BLTU:
		return a < b
	case isa.BGEU:
		return a >= b
	}
	panic("emu: EvalBranch on non-branch instruction " + in.Op.String())
}

// EffAddr computes the effective address of a load or store from its base
// register value.
func EffAddr(in isa.Inst, base uint64) uint64 {
	return base + uint64(int64(in.Imm))
}
