package cisim_test

import (
	"fmt"

	"cisim"
)

// The headline comparison: complete squash (BASE) versus control
// independence (CI) on a short run of the go-like workload.
func Example() {
	p := cisim.MustWorkload("xvortex").Program(200)
	for _, mach := range []cisim.Machine{cisim.MachineBase, cisim.MachineCI} {
		r, err := cisim.RunDetailed(p, cisim.DetailedConfig{
			Machine:    mach,
			WindowSize: 128,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%v retired %d instructions\n", mach, r.Stats.Retired)
	}
	// Output:
	// BASE retired 7604 instructions
	// CI retired 7604 instructions
}

// Assembling and simulating a custom program.
func ExampleAssemble() {
	p, err := cisim.Assemble(`
		main:
			li r1, 10
			li r2, 0
		loop:
			add r2, r2, r1
			addi r1, r1, -1
			bne r1, r0, loop
			halt
	`)
	if err != nil {
		panic(err)
	}
	r, err := cisim.RunDetailed(p, cisim.DetailedConfig{
		Machine: cisim.MachineBase, WindowSize: 32,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("retired %d instructions\n", r.Stats.Retired)
	// Output:
	// retired 33 instructions
}

// Running a trace through an idealized Section 2 model.
func ExampleRunIdeal() {
	p := cisim.MustWorkload("xjpeg").Program(50)
	tr, err := cisim.GenerateTrace(p, 0)
	if err != nil {
		panic(err)
	}
	r, err := cisim.RunIdeal(tr, cisim.IdealConfig{
		Model: cisim.ModelWRFD, WindowSize: 256,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("retired %d instructions\n", r.Retired)
	// Output:
	// retired 11207 instructions
}

// Rendering a pipeline timeline from recorded timing.
func ExampleRenderPipeline() {
	p, err := cisim.Assemble(`
		main:
			li r1, 2
			mul r2, r1, r1
			add r3, r2, r1
			halt
	`)
	if err != nil {
		panic(err)
	}
	r, err := cisim.RunDetailed(p, cisim.DetailedConfig{
		Machine: cisim.MachineBase, WindowSize: 32, RecordPipeline: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(cisim.RenderPipeline(r.Pipeline, 16))
	// Output:
	// cycle axis: 1 .. 16 (one column per cycle)
	//      1 0x00001000 addi r1, r0, 2           F.ICR
	//      2 0x00001004 mul r2, r1, r1           F..I==CR
	//      3 0x00001008 add r3, r2, r1           F.....ICR
	//      4 0x0000100c halt                     F.IC....R
}
