package main

import (
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"

	"cisim/internal/api"
	"cisim/internal/exp"
	"cisim/internal/runner"
)

// TestCmdRunJobsDeterminism: `run all -json` output is byte-identical at
// -jobs 1 and -jobs 8. The cache is reset between runs so the second run
// really re-executes through the parallel scheduler instead of replaying
// memoized artifacts.
func TestCmdRunJobsDeterminism(t *testing.T) {
	runner.Artifacts.Reset()
	seq, err := capture(t, func() error {
		return cmdRun([]string{"-quick", "-json", "-jobs", "1", "all"})
	})
	if err != nil {
		t.Fatal(err)
	}
	runner.Artifacts.Reset()
	par, err := capture(t, func() error {
		return cmdRun([]string{"-quick", "-json", "-jobs", "8", "all"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("-jobs 8 output differs from -jobs 1 (len %d vs %d)", len(par), len(seq))
	}
	if !strings.Contains(seq, `"id": "table1"`) || !strings.Contains(seq, `"id": "fig17"`) {
		t.Error("run all -json missing experiments")
	}
}

// TestCmdRunIdentityMatrix pins the perf-rewrite acceptance bar end to
// end: `run -quick -json all` must be byte-identical across -jobs 1 and
// -jobs 8, cold and warm in-process caches, and cold and warm persistent
// stores. The warm in-process legs are the shared-prep fast path — the
// second sweep replays the memoized ideal.Prep through RunPrepared (the
// prep-hit assertion below proves that path actually ran) — and the warm
// store leg replays results from disk after the in-memory cache is
// dropped, so a serialization or fingerprint bug cannot hide behind the
// memory cache.
func TestCmdRunIdentityMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("six full quick sweeps; the non-short run covers this")
	}
	sweep := func(args ...string) string {
		t.Helper()
		out, err := capture(t, func() error {
			return cmdRun(append([]string{"-quick", "-json"}, args...))
		})
		if err != nil {
			t.Fatalf("run %v: %v", args, err)
		}
		return out
	}
	runner.Artifacts.Reset()
	ref := sweep("-jobs", "1", "all")

	before := runner.Artifacts.Stats()
	if got := sweep("-jobs", "1", "all"); got != ref {
		t.Errorf("warm -jobs 1 differs from cold reference (len %d vs %d)", len(got), len(ref))
	}
	if d := runner.Artifacts.Stats().Sub(before); d.PrepHits == 0 {
		t.Errorf("warm sweep recorded no prep hits; RunPrepared reuse not exercised: %+v", d)
	}
	if got := sweep("-jobs", "8", "all"); got != ref {
		t.Errorf("warm -jobs 8 differs from cold reference (len %d vs %d)", len(got), len(ref))
	}

	runner.Artifacts.Reset()
	if got := sweep("-jobs", "8", "all"); got != ref {
		t.Errorf("cold -jobs 8 differs from cold -jobs 1 (len %d vs %d)", len(got), len(ref))
	}

	dir := t.TempDir()
	runner.Artifacts.Reset()
	if got := sweep("-jobs", "4", "-cache-dir", dir, "all"); got != ref {
		t.Errorf("cold store-backed run differs (len %d vs %d)", len(got), len(ref))
	}
	// Drop the in-memory cache but keep the store: the next sweep must
	// rebuild byte-identical output from persisted results alone.
	runner.Artifacts.Reset()
	if got := sweep("-jobs", "4", "-cache-dir", dir, "all"); got != ref {
		t.Errorf("warm store-backed run differs (len %d vs %d)", len(got), len(ref))
	}
	runner.Artifacts.Reset()
}

// TestRenderOutcomesAggregatesErrors: one failing experiment makes the
// run error (non-zero exit from main) while the healthy experiments
// still print, and every failure is named.
func TestRenderOutcomesAggregatesErrors(t *testing.T) {
	e, ok := exp.Get("table1")
	if !ok {
		t.Fatal("table1 missing")
	}
	r, err := e.Run(exp.Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	outcomes := []api.Outcome{
		{Exp: e, Result: r},
		{Exp: e, Err: errors.New("fig99/xgo: window underflow")},
		{Exp: e, Err: errors.New("fig99/xgcc: deadlock")},
	}
	out, err := capture(t, func() error {
		return renderOutcomes([]*exp.Experiment{e, e, e}, outcomes, false, false)
	})
	if err == nil {
		t.Fatal("failures must surface as an error")
	}
	for _, want := range []string{"2 of 3 experiments failed", "window underflow", "deadlock"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error missing %q: %v", want, err)
		}
	}
	if !strings.Contains(out, "Table 1: benchmark information") {
		t.Error("healthy experiment suppressed by a failing one")
	}
}

// TestCmdRunEvents: -events writes a JSONL stream covering the run
// lifecycle, job executions, and cache traffic.
func TestCmdRunEvents(t *testing.T) {
	f := t.TempDir() + "/events.jsonl"
	if _, err := capture(t, func() error {
		return cmdRun([]string{"-quick", "-events", f, "table1"})
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev struct {
			Ev   string  `json:"ev"`
			T    float64 `json:"t_ms"`
			Exp  string  `json:"exp"`
			Jobs int     `json:"jobs"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		counts[ev.Ev]++
		if ev.Ev == "run_start" && ev.Jobs != 5 {
			t.Errorf("run_start jobs = %d, want 5 (one per workload)", ev.Jobs)
		}
		if ev.Ev == "job_start" && ev.Exp != "table1" {
			t.Errorf("job_start exp = %q", ev.Exp)
		}
	}
	if counts["run_start"] != 1 || counts["run_end"] != 1 {
		t.Errorf("lifecycle events: %v", counts)
	}
	if counts["job_start"] != 5 || counts["job_end"] != 5 {
		t.Errorf("job events: %v", counts)
	}
	if counts["cache"] == 0 {
		t.Errorf("no cache events: %v", counts)
	}
}

// TestCmdRunCacheSharing: within one process, a second run of the same
// experiment is served from the artifact cache.
func TestCmdRunCacheSharing(t *testing.T) {
	runner.Artifacts.Reset()
	if _, err := capture(t, func() error { return cmdRun([]string{"-quick", "fig12"}) }); err != nil {
		t.Fatal(err)
	}
	before := runner.Artifacts.Stats()
	if _, err := capture(t, func() error { return cmdRun([]string{"-quick", "fig12"}) }); err != nil {
		t.Fatal(err)
	}
	d := runner.Artifacts.Stats().Sub(before)
	if d.Misses() != 0 {
		t.Errorf("second identical run missed the cache %d times: %+v", d.Misses(), d)
	}
	if d.ResultHits == 0 {
		t.Errorf("second identical run recorded no result hits: %+v", d)
	}
}
