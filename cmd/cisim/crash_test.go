package main

// Real-process crash and disk-fault recovery tests for the persistent
// artifact store (internal/store, DESIGN.md §13). The store's unit
// tests stub the crash hook and panic; these tests do it for real: the
// test binary re-executes itself as a child `cisim run` (see TestMain),
// the armed store-crash fault kills that child with os.Exit mid disk
// operation — indistinguishable from SIGKILL to the filesystem — and a
// clean rerun over the survived store directory must self-heal and
// produce byte-identical JSON. The non-fatal disk faults (short write,
// rename failure, ENOSPC, stale lock, read corruption) get the same
// treatment: armed or not, cold or warm, the run's stdout never
// changes, because the store is an accelerator and never a point of
// failure.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"

	"cisim/internal/store"
)

// childEnv carries the child's cmdRun argv, unit-separated because
// experiment ids and flag values never contain control bytes.
const childEnv = "CISIM_CRASH_CHILD"

// TestMain re-executes cmdRun when invoked as a crash-test child; the
// armed store-crash fault then terminates this process for real, which
// no in-process test can do without taking the suite down with it.
func TestMain(m *testing.M) {
	if argv := os.Getenv(childEnv); argv != "" {
		if err := cmdRun(strings.Split(argv, "\x1f")); err != nil {
			fmt.Fprintln(os.Stderr, "cisim:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runChild runs `cisim run args...` in a separate process and returns
// its stdout and exit code.
func runChild(t *testing.T, args ...string) ([]byte, int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = append(os.Environ(), childEnv+"="+strings.Join(args, "\x1f"))
	var out, errs bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errs
	err = cmd.Run()
	code := 0
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("child failed to run: %v", err)
	}
	if code != 0 {
		t.Logf("child exited %d, stderr:\n%s", code, errs.String())
	}
	return out.Bytes(), code
}

// crashBaseline runs the child once without a store and returns the
// JSON every store-backed variant must reproduce byte for byte.
func crashBaseline(t *testing.T) []byte {
	t.Helper()
	out, code := runChild(t, "-quick", "-json", "fig5")
	if code != 0 {
		t.Fatalf("baseline run exited %d", code)
	}
	return out
}

// verifyClean opens the store directory and requires every blob to pass
// full verification.
func verifyClean(t *testing.T, dir string) {
	t.Helper()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopening store after recovery: %v", err)
	}
	defer st.Close()
	checked, bad, err := st.Verify(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Errorf("store has %d corrupt blobs after recovery (of %d checked), want 0: %+v", len(bad), checked, bad)
	}
}

// TestStoreCrashRecovery kills a store-backed run at each of the three
// crash sites — temp written but not renamed, blob renamed but index
// record not appended, index record half-written — then reruns clean
// over the same directory. The rerun must exit 0, emit byte-identical
// JSON, and leave a store with no corrupt blobs.
func TestStoreCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real child processes; the race detector sees nothing across the boundary")
	}
	baseline := crashBaseline(t)
	for site := 1; site <= 3; site++ {
		t.Run(fmt.Sprintf("site%d", site), func(t *testing.T) {
			dir := t.TempDir() + "/store"
			_, code := runChild(t, "-quick", "-json",
				"-faults", fmt.Sprintf("%s@%d", store.FaultCrash, site),
				"-cache-dir", dir, "fig5")
			if code != 137 {
				t.Fatalf("crashed child exited %d, want 137", code)
			}
			out, code := runChild(t, "-quick", "-json", "-cache-dir", dir, "fig5")
			if code != 0 {
				t.Fatalf("recovery run exited %d", code)
			}
			if !bytes.Equal(out, baseline) {
				t.Errorf("recovery run JSON differs from baseline after crash at site %d", site)
			}
			verifyClean(t, dir)
		})
	}
}

// TestStoreDiskFaultsPreserveOutput arms each non-fatal disk fault for
// an entire cold run and a subsequent clean warm run: both must exit 0
// and match the storeless baseline byte for byte — degraded caching,
// never a degraded answer.
func TestStoreDiskFaultsPreserveOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real child processes; the race detector sees nothing across the boundary")
	}
	baseline := crashBaseline(t)
	// #1000000: fire on every hit for the whole run.
	for _, point := range []string{store.FaultShortWrite, store.FaultRenameFail,
		store.FaultENOSPC, store.FaultLockStale} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir() + "/store"
			out, code := runChild(t, "-quick", "-json",
				"-faults", point+"#1000000", "-cache-dir", dir, "fig5")
			if code != 0 {
				t.Fatalf("faulted cold run exited %d", code)
			}
			if !bytes.Equal(out, baseline) {
				t.Errorf("cold run under %s differs from baseline", point)
			}
			out, code = runChild(t, "-quick", "-json", "-cache-dir", dir, "fig5")
			if code != 0 {
				t.Fatalf("clean rerun exited %d", code)
			}
			if !bytes.Equal(out, baseline) {
				t.Errorf("clean rerun after %s differs from baseline", point)
			}
		})
	}
}

// TestStoreReadCorruptionHeals warms a store, flips a bit in the first
// blob read of the warm run, and requires the run to quarantine the
// blob, recompute, and still print baseline-identical JSON.
func TestStoreReadCorruptionHeals(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real child processes; the race detector sees nothing across the boundary")
	}
	baseline := crashBaseline(t)
	dir := t.TempDir() + "/store"
	if out, code := runChild(t, "-quick", "-json", "-cache-dir", dir, "fig5"); code != 0 {
		t.Fatalf("warming run exited %d", code)
	} else if !bytes.Equal(out, baseline) {
		t.Fatal("warming run differs from baseline")
	}
	out, code := runChild(t, "-quick", "-json",
		"-faults", store.FaultReadCorrupt+"@1", "-cache-dir", dir, "fig5")
	if code != 0 {
		t.Fatalf("corrupted warm run exited %d", code)
	}
	if !bytes.Equal(out, baseline) {
		t.Error("warm run with a corrupted read differs from baseline")
	}
	ents, err := os.ReadDir(dir + "/quarantine")
	if err != nil || len(ents) == 0 {
		t.Errorf("corrupted blob was not quarantined (entries %d, err %v)", len(ents), err)
	}
	verifyClean(t, dir)
}
