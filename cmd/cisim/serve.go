package main

// cisim serve: the HTTP frontend over the shared sweep engine
// (internal/serve over internal/api). The process model mirrors the
// CLI: SIGINT or SIGTERM starts a graceful drain — queued sweeps are
// cancelled, the running sweep's in-flight jobs complete and are
// journaled, then the listener closes and the process exits.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cisim/internal/api"
	"cisim/internal/runner"
	"cisim/internal/serve"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address (host:port; port 0 picks a free port)")
	queue := fs.Int("queue", 0, "bounded sweep queue depth (0 = default 8); full queue answers 429")
	jobs := fs.Int("jobs", 0, "default runner-pool width for sweeps that do not set jobs (0 = GOMAXPROCS)")
	journalDir := fs.String("journal-dir", "", "write per-sweep crash-consistent journals into this directory")
	spansDir := fs.String("spans-dir", "", "write each sweep's span trace (JSONL, also served at /v1/sweeps/{id}/spans) into this directory")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "how long a SIGTERM/SIGINT drain may take before giving up")
	addrFile := fs.String("addr-file", "", "write the bound listen address to this file (for scripts using port 0)")
	cacheDir := fs.String("cache-dir", "", "persistent artifact store shared with other cisim processes (also CISIM_CACHE_DIR; DESIGN.md §13)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no arguments (got %q)", fs.Args())
	}
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			return err
		}
	}
	if *spansDir != "" {
		if err := os.MkdirAll(*spansDir, 0o755); err != nil {
			return err
		}
	}
	// The persistent store outlives individual sweeps: it mounts behind
	// the process cache for the daemon's lifetime, and its counters ride
	// in /healthz and the drain footer below.
	detachStore, err := attachStore(*cacheDir)
	if err != nil {
		return err
	}
	defer detachStore()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return err
		}
	}

	depth := *queue
	if depth <= 0 {
		depth = serve.DefaultQueue
	}
	srv := serve.New(serve.Config{Queue: *queue, Jobs: *jobs, JournalDir: *journalDir,
		SpansDir: *spansDir, Store: runner.Artifacts.Store()})
	hs := &http.Server{Handler: srv}
	fmt.Fprintf(os.Stderr, "cisim: serving on http://%s (api v%d; queue %d; SIGTERM drains)\n",
		bound, api.Version, depth)

	// Serve until a signal arrives. SIGTERM and SIGINT share the drain
	// path, exactly as `cisim run` treats them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately rather than re-draining

	fmt.Fprintln(os.Stderr, "cisim: draining (queued sweeps cancelled, in-flight jobs completing)")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain order: stop the sweep machinery first so event streams reach
	// EOF, then close the HTTP side (which waits for those streams'
	// handlers to return).
	derr := srv.Shutdown(dctx)
	herr := hs.Shutdown(dctx)
	if derr != nil {
		return derr
	}
	if herr != nil && !errors.Is(herr, http.ErrServerClosed) {
		return herr
	}
	fmt.Fprintln(os.Stderr, "cisim: drain complete")
	if st := runner.Artifacts.Store(); st != nil {
		h := serve.StoreHealth(st)
		fmt.Fprintf(os.Stderr, "cisim: store %s: %d hits, %d misses, %d puts, %d heals, %d evictions, %d B read, %d B written\n",
			h.Dir, h.Hits, h.Misses, h.Puts, h.Heals, h.Evictions, h.BytesRead, h.BytesWritten)
	}
	return nil
}

// cmdVersion prints what /version serves: module, build version,
// toolchain, VCS revision when stamped, and the API schema version.
func cmdVersion() error {
	v := api.Build()
	fmt.Printf("%s %s %s api=v%d", v.Module, v.Version, v.GoVersion, v.API)
	if v.Revision != "" {
		rev := v.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Printf(" rev=%s", rev)
		if v.Modified {
			fmt.Print("+dirty")
		}
	}
	fmt.Println()
	return nil
}
