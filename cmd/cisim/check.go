package main

import (
	"flag"
	"fmt"
	"os"

	"cisim/internal/check"
	"cisim/internal/workloads"
)

// cmdCheck statically verifies programs with internal/check. With no
// arguments it checks every built-in workload (at the default experiment
// iteration count); with arguments it checks the named assembly source
// files. Any diagnostic makes the command fail.
func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	iters := fs.Int("iters", 0, "workload iterations to verify at (0 = default)")
	quiet := fs.Bool("q", false, "suppress per-program ok lines")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cisim check [-iters N] [-q] [files...]\n\n")
		fmt.Fprintf(fs.Output(), "Verifies assembled programs: branch targets in range, no unreachable\n")
		fmt.Fprintf(fs.Output(), "blocks, registers defined before use on all paths, call/return\n")
		fmt.Fprintf(fs.Output(), "discipline, and a reconvergence point for every conditional branch.\n")
		fmt.Fprintf(fs.Output(), "Without file arguments, checks every built-in workload.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}

	total := 0
	report := func(name string, ds []check.Diagnostic) {
		if len(ds) == 0 {
			if !*quiet {
				fmt.Printf("%s: ok\n", name)
			}
			return
		}
		total += len(ds)
		for _, d := range ds {
			fmt.Println(d)
		}
	}

	if fs.NArg() == 0 {
		for _, w := range workloads.All() {
			report(w.Name, check.Source(w.Name+".s", w.Source(*iters)))
		}
	} else {
		for _, file := range fs.Args() {
			src, err := os.ReadFile(file)
			if err != nil {
				return err
			}
			report(file, check.Source(file, string(src)))
		}
	}
	if total > 0 {
		return fmt.Errorf("%d problem(s) found", total)
	}
	return nil
}
