package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCmdCheck pins the command-line contract: built-in workloads verify
// cleanly, and a bad source file yields an error (hence a non-zero exit
// from main).
func TestCmdCheck(t *testing.T) {
	if err := cmdCheck([]string{"-q"}); err != nil {
		t.Errorf("built-in workloads should verify cleanly: %v", err)
	}

	f := filepath.Join(t.TempDir(), "bad.s")
	if err := os.WriteFile(f, []byte("main:\n\tb nowhere\n\thalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := cmdCheck([]string{"-q", f})
	if err == nil {
		t.Fatal("cmdCheck should fail on an undefined label")
	}
	if err.Error() != "1 problem(s) found" {
		t.Errorf("error = %q, want \"1 problem(s) found\"", err)
	}

	if err := cmdCheck([]string{"-q", filepath.Join(t.TempDir(), "missing.s")}); err == nil {
		t.Error("cmdCheck should fail on an unreadable file")
	}
}
