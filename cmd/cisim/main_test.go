package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// capture redirects stdout around f and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), ferr
}

func TestCmdList(t *testing.T) {
	out, err := capture(t, cmdList)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "fig17", "xgcc", "xvortex", "experiments:", "workloads:"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestCmdRunQuick(t *testing.T) {
	out, err := capture(t, func() error { return cmdRun([]string{"-quick", "table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mispredict rate") || !strings.Contains(out, "xcompress") {
		t.Errorf("run table1 output unexpected:\n%s", out)
	}
}

func TestCmdRunUnknown(t *testing.T) {
	if _, err := capture(t, func() error { return cmdRun([]string{"nope"}) }); err == nil {
		t.Error("unknown experiment should error")
	}
	if _, err := capture(t, func() error { return cmdRun(nil) }); err == nil {
		t.Error("missing id should error")
	}
}

func TestCmdSim(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdSim([]string{"-machine=CI", "-window=64", "-iters=100", "xvortex"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"IPC", "recoveries serviced", "work saved"} {
		if !strings.Contains(out, want) {
			t.Errorf("sim output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdSimBadArgs(t *testing.T) {
	cases := [][]string{
		{"-machine=WAT", "xgo"},
		{"-completion=WAT", "xgo"},
		{"-reconv=WAT", "xgo"},
		{"nope"},
		{},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return cmdSim(args) }); err == nil {
			t.Errorf("cmdSim(%v) should error", args)
		}
	}
}

func TestCmdIdeal(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdIdeal([]string{"-model=WR-FD", "-window=64", "-iters=100", "xjpeg"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "IPC=") || !strings.Contains(out, "WR-FD") {
		t.Errorf("ideal output unexpected: %s", out)
	}
}

func TestCmdIdealBadArgs(t *testing.T) {
	cases := [][]string{
		{"-model=WAT", "xgo"},
		{"nope"},
		{},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return cmdIdeal(args) }); err == nil {
			t.Errorf("cmdIdeal(%v) should error", args)
		}
	}
}

func TestCmdDisasm(t *testing.T) {
	out, err := capture(t, func() error { return cmdDisasm([]string{"xvortex"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"main:", "0x00001000", "instructions, entry"} {
		if !strings.Contains(out, want) {
			t.Errorf("disasm output missing %q", want)
		}
	}
}

func TestCmdDisasmFile(t *testing.T) {
	f := t.TempDir() + "/p.s"
	src := "main:\n\tli r1, 3\nloop:\n\taddi r1, r1, -1\n\tbne r1, r0, loop\n\thalt\n"
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return cmdDisasm([]string{"-file", f}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "loop:") || !strings.Contains(out, "<loop>") {
		t.Errorf("disasm -file should print labels and branch targets:\n%s", out)
	}
}

func TestCmdAnalyze(t *testing.T) {
	out, err := capture(t, func() error { return cmdAnalyze([]string{"xcompress"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"basic blocks", "reconverges at", "branch sites"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdTrace(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdTrace([]string{"-n", "10", "-iters", "50", "xgo"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "entries total") || !strings.Contains(out, "misprediction rate") {
		t.Errorf("trace output unexpected:\n%s", out)
	}
}

func TestCmdTraceMispOnly(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdTrace([]string{"-misp", "-n", "5", "-iters", "200", "xgo"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "0x0000") && !strings.Contains(line, "mispredicted") &&
			!strings.Contains(line, "entries total") {
			t.Errorf("-misp printed a non-mispredicted entry: %q", line)
		}
	}
}

func TestCmdInspectBadArgs(t *testing.T) {
	for _, f := range []func([]string) error{cmdDisasm, cmdAnalyze, cmdTrace} {
		if _, err := capture(t, func() error { return f([]string{"nope"}) }); err == nil {
			t.Error("unknown workload should error")
		}
		if _, err := capture(t, func() error { return f(nil) }); err == nil {
			t.Error("missing argument should error")
		}
		if _, err := capture(t, func() error { return f([]string{"-file", "/does/not/exist"}) }); err == nil {
			t.Error("missing file should error")
		}
	}
}

func TestCmdPipe(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdPipe([]string{"-n", "16", "-iters", "60", "-machine=CI", "xgo"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cycle axis", "F fetch", "R retire"} {
		if !strings.Contains(out, want) {
			t.Errorf("pipe output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdPipeBadArgs(t *testing.T) {
	cases := [][]string{
		{"-machine=WAT", "xgo"},
		{"nope"},
		{},
		{"-start", "99999999", "-iters", "50", "xgo"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return cmdPipe(args) }); err == nil {
			t.Errorf("cmdPipe(%v) should error", args)
		}
	}
}

func TestCmdAnalyzeDynamic(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdAnalyze([]string{"-dynamic", "-iters", "300", "xgcc"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dynamic behaviour", "mispredicts", "avg wrong-path len"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze -dynamic missing %q:\n%s", want, out)
		}
	}
}

func TestCmdRunJSONAndCompare(t *testing.T) {
	out, err := capture(t, func() error { return cmdRun([]string{"-quick", "-json", "table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"id": "table1"`) {
		t.Fatalf("run -json output unexpected:\n%s", out)
	}
	dir := t.TempDir()
	f := dir + "/r.json"
	if err := os.WriteFile(f, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	same, err := capture(t, func() error { return cmdCompare([]string{f, f}) })
	if err != nil {
		t.Fatalf("identical files should compare clean: %v", err)
	}
	if !strings.Contains(same, "no differences") {
		t.Errorf("compare output unexpected: %q", same)
	}
	// Perturb one numeric cell and expect a non-nil error plus a report.
	perturbed := strings.Replace(out, `"xgcc",`, `"xgcc",`, 1)
	perturbed = regexpReplaceFirstNumber(perturbed)
	f2 := dir + "/r2.json"
	if err := os.WriteFile(f2, []byte(perturbed), 0o644); err != nil {
		t.Fatal(err)
	}
	diffOut, err := capture(t, func() error { return cmdCompare([]string{"-tol", "0.5", f, f2}) })
	if err == nil {
		t.Error("perturbed results should make compare fail")
	}
	if !strings.Contains(diffOut, "table1") {
		t.Errorf("diff report should name the experiment: %q", diffOut)
	}
}

// regexpReplaceFirstNumber bumps the first multi-digit numeric cell so the
// comparison sees a >0.5% move.
func regexpReplaceFirstNumber(s string) string {
	i := strings.Index(s, `"266140"`)
	if i < 0 {
		// Quick scale changes instruction counts; find any 5+ digit cell.
		for j := 0; j+7 < len(s); j++ {
			if s[j] == '"' && s[j+1] >= '1' && s[j+1] <= '9' {
				allDigits := true
				for k := j + 1; k < j+6; k++ {
					if s[k] < '0' || s[k] > '9' {
						allDigits = false
						break
					}
				}
				if allDigits {
					return s[:j+1] + "9" + s[j+1:]
				}
			}
		}
		return s
	}
	return strings.Replace(s, `"266140"`, `"366140"`, 1)
}

func TestCmdCompareBadArgs(t *testing.T) {
	if _, err := capture(t, func() error { return cmdCompare([]string{"one.json"}) }); err == nil {
		t.Error("compare with one file should error")
	}
	if _, err := capture(t, func() error { return cmdCompare([]string{"/no/such", "/files"}) }); err == nil {
		t.Error("compare with missing files should error")
	}
}

func TestCmdRunParallel(t *testing.T) {
	// -j parallelism must not change outputs or their order.
	seq, err := capture(t, func() error { return cmdRun([]string{"-quick", "table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	par, err := capture(t, func() error { return cmdRun([]string{"-quick", "-j", "4", "table1"}) })
	if err != nil {
		t.Fatal(err)
	}
	strip := func(s string) string {
		// Drop the timing lines, which legitimately differ.
		var keep []string
		for _, l := range strings.Split(s, "\n") {
			if strings.HasPrefix(l, "(") && strings.HasSuffix(l, ")") {
				continue
			}
			keep = append(keep, l)
		}
		return strings.Join(keep, "\n")
	}
	if strip(seq) != strip(par) {
		t.Errorf("parallel run output differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}

func TestCmdPipeKanata(t *testing.T) {
	f := t.TempDir() + "/k.log"
	out, err := capture(t, func() error {
		return cmdPipe([]string{"-kanata", f, "-n", "12", "-iters", "60", "xgo"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Kanata 0004") {
		t.Errorf("pipe -kanata output unexpected: %q", out)
	}
	data, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "Kanata\t0004\n") {
		t.Errorf("log file missing Kanata header: %q", string(data[:40]))
	}
}

func TestCmdDisasmSource(t *testing.T) {
	out, err := capture(t, func() error { return cmdDisasm([]string{"-source", "xcompress"}) })
	if err != nil {
		t.Fatal(err)
	}
	f := t.TempDir() + "/rt.s"
	if err := os.WriteFile(f, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	// The emitted source must itself load (full round trip via -file).
	if _, err := capture(t, func() error { return cmdDisasm([]string{"-file", f}) }); err != nil {
		t.Fatalf("re-assembling disasm -source output: %v", err)
	}
	if !strings.Contains(out, "main:") || !strings.Contains(out, ".data") {
		t.Errorf("source output missing structure:\n%s", out[:200])
	}
}

func TestCmdSimAblationFlags(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdSim([]string{"-machine=CI", "-window=64", "-iters=100",
			"-icache", "-fetch-taken=1", "-conservative-loads", "xgcc"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"instruction cache miss rate", "avg window occupancy"} {
		if !strings.Contains(out, want) {
			t.Errorf("sim ablation output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdPipeSquashed(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdPipe([]string{"-squashed", "-machine=BASE", "-n", "200", "-iters", "100", "xgo"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "squashed") {
		t.Errorf("pipe -squashed should show squashed rows:\n%s", out[:300])
	}
}
