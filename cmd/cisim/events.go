package main

// cisim events: offline analyzer for the observability streams the rest
// of the tool writes — the JSONL run-event stream (`cisim run -events`),
// the crash-consistent journal (`cisim run -journal`), and a `cisim
// serve` event endpoint fetched over HTTP. It answers the questions a
// slow or failed campaign raises without re-running it: which workers
// did the work, what did the cache absorb, which job was the critical
// path, and what went wrong.

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"

	"cisim/internal/stats"
)

func cmdEvents(args []string) error {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	top := fs.Int("top", 5, "slowest jobs to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("events needs one JSONL source: a file from 'cisim run -events FILE' or -journal FILE, or an http(s) URL such as a serve daemon's /v1/sweeps/{id}/events")
	}
	src, name, err := openEventSource(fs.Arg(0))
	if err != nil {
		return err
	}
	defer src.Close()
	a, err := analyzeEvents(src, name)
	if err != nil {
		return err
	}
	fmt.Print(a.render(*top))
	return nil
}

// openEventSource opens the argument as a file, or as an HTTP stream
// when it is a URL — the daemon's JSONL event endpoint analyzes exactly
// like an -events file, including live streams (the response body is
// read to EOF, which for a running sweep means until it finishes).
func openEventSource(arg string) (io.ReadCloser, string, error) {
	if !strings.HasPrefix(arg, "http://") && !strings.HasPrefix(arg, "https://") {
		f, err := os.Open(arg)
		return f, arg, err
	}
	resp, err := http.Get(arg)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		return nil, "", fmt.Errorf("%s: %s: %s", arg, resp.Status, strings.TrimSpace(string(body)))
	}
	return resp.Body, arg, nil
}

// eventLine is the union of a run event and a journal record: run events
// carry "ev", journal records carry "v"/"addr"/"payload". Unknown fields
// are ignored, so the analyzer tolerates streams written by newer builds.
type eventLine struct {
	Ev string `json:"ev"`
	T  float64
	// Journal record fields.
	V    int    `json:"v"`
	Addr string `json:"addr"`

	Exp     string  `json:"exp"`
	Key     string  `json:"key"`
	Kind    string  `json:"kind"`
	Hit     *bool   `json:"hit"`
	Bytes   int64   `json:"bytes"`
	Ms      float64 `json:"ms"`
	Instrs  uint64  `json:"instrs"`
	Err     string  `json:"err"`
	Attempt int     `json:"attempt"`
	Worker  int     `json:"worker"`

	Jobs        int     `json:"jobs"`
	Workers     int     `json:"workers"`
	Skipped     int     `json:"skipped"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	Healed      uint64  `json:"healed"`
	HeapBytes   uint64  `json:"heap_bytes"`
	GCCycles    uint32  `json:"gc_cycles"`
	GCPauseMs   float64 `json:"gc_pause_ms"`
	Goroutines  int     `json:"goroutines"`
}

// jobStat is one job_end observation.
type jobStat struct {
	Exp, Key string
	Ms       float64
	Instrs   uint64
	Attempts int
	Worker   int
	Err      string
}

type workerStat struct {
	Jobs   int
	BusyMs float64
}

type kindStat struct{ Hits, Misses int }

// storeStat aggregates one persistent-store event type.
type storeStat struct {
	Count int
	Bytes int64
}

// analysis is everything cmdEvents learned from one stream.
type analysis struct {
	lines, malformed int
	journalRecords   int
	journalExps      map[string]int

	runStart, runEnd *eventLine
	jobs             []jobStat
	workers          map[int]*workerStat
	kinds            map[string]kindStat
	store            map[string]*storeStat // by event type: store_hit, store_put, ...
	metricsEvents    []string // "exp/workload" per metrics event
	retries, stalls  int
	skips, corrupt   int
	aborts           int
	failures         []jobStat
}

func analyzeEvents(r io.Reader, name string) (*analysis, error) {
	a := &analysis{
		journalExps: map[string]int{},
		workers:     map[int]*workerStat{},
		kinds:       map[string]kindStat{},
		store:       map[string]*storeStat{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		a.lines++
		var e eventLine
		if err := json.Unmarshal(line, &e); err != nil {
			a.malformed++
			continue
		}
		if e.Ev == "" {
			if e.V > 0 && e.Addr != "" {
				a.journalRecords++
				a.journalExps[e.Exp]++
			} else {
				a.malformed++
			}
			continue
		}
		switch e.Ev {
		case "run_start":
			ec := e
			a.runStart = &ec
		case "run_end":
			ec := e
			a.runEnd = &ec
		case "job_end":
			if e.Attempt == 0 {
				e.Attempt = 1 // the field is only stamped on retries
			}
			js := jobStat{Exp: e.Exp, Key: e.Key, Ms: e.Ms, Instrs: e.Instrs,
				Attempts: e.Attempt, Worker: e.Worker, Err: e.Err}
			a.jobs = append(a.jobs, js)
			if e.Err != "" {
				a.failures = append(a.failures, js)
			}
			if e.Worker > 0 {
				ws := a.workers[e.Worker]
				if ws == nil {
					ws = &workerStat{}
					a.workers[e.Worker] = ws
				}
				ws.Jobs++
				ws.BusyMs += e.Ms
			}
		case "job_retry":
			a.retries++
		case "job_stall":
			a.stalls++
		case "job_skip":
			a.skips++
		case "cache":
			ks := a.kinds[e.Kind]
			if e.Hit != nil && *e.Hit {
				ks.Hits++
			} else {
				ks.Misses++
			}
			a.kinds[e.Kind] = ks
		case "cache_corrupt":
			a.corrupt++
		case "store_hit", "store_put", "store_evict", "store_quarantine":
			ss := a.store[e.Ev]
			if ss == nil {
				ss = &storeStat{}
				a.store[e.Ev] = ss
			}
			ss.Count++
			ss.Bytes += e.Bytes
		case "metrics":
			a.metricsEvents = append(a.metricsEvents, e.Exp+"/"+e.Key)
		case "run_abort":
			a.aborts++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if a.lines == 0 {
		return nil, fmt.Errorf("%s: empty file", name)
	}
	return a, nil
}

func (a *analysis) render(top int) string {
	out := ""

	if a.journalRecords > 0 {
		t := stats.NewTable(fmt.Sprintf("journal: %d completed job(s)", a.journalRecords),
			"experiment", "jobs")
		ids := make([]string, 0, len(a.journalExps))
		//lint:ignore detrange sorted just below
		for id := range a.journalExps {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			t.AddRow(id, a.journalExps[id])
		}
		out += t.String() + "\n"
	}

	if a.runStart != nil || a.runEnd != nil || len(a.jobs) > 0 {
		t := stats.NewTable("run overview", "metric", "value")
		if a.runStart != nil {
			t.AddRow("jobs scheduled", a.runStart.Jobs)
			t.AddRow("workers", a.runStart.Workers)
			if a.runStart.Skipped > 0 {
				t.AddRow("jobs replayed from journal", a.runStart.Skipped)
			}
		}
		t.AddRow("jobs completed", len(a.jobs))
		if a.retries > 0 {
			t.AddRow("retries", a.retries)
		}
		if a.stalls > 0 {
			t.AddRow("deadline stalls", a.stalls)
		}
		if a.corrupt > 0 {
			t.AddRow("corrupt artifacts healed", a.corrupt)
		}
		if a.aborts > 0 {
			t.AddRow("run aborts", a.aborts)
		}
		if len(a.failures) > 0 {
			t.AddRow("failed jobs", len(a.failures))
		}
		if a.runEnd != nil {
			t.AddRow("wall clock (ms)", a.runEnd.Ms)
			t.AddRow("instructions simulated", int(a.runEnd.Instrs))
			t.AddRow("heap at end (MB)", float64(a.runEnd.HeapBytes)/(1<<20))
			t.AddRow("GC cycles", int(a.runEnd.GCCycles))
			t.AddRow("GC pause total (ms)", a.runEnd.GCPauseMs)
			t.AddRow("goroutines at end", a.runEnd.Goroutines)
		}
		if len(a.metricsEvents) > 0 {
			t.AddRow("metrics snapshots", len(a.metricsEvents))
		}
		out += t.String() + "\n"
	}

	if len(a.workers) > 0 {
		t := stats.NewTable("worker utilization", "worker", "jobs", "busy ms", "share")
		var busyTotal float64
		ids := make([]int, 0, len(a.workers))
		//lint:ignore detrange sorted just below
		for id, ws := range a.workers {
			ids = append(ids, id)
			busyTotal += ws.BusyMs
		}
		sort.Ints(ids)
		for _, id := range ids {
			ws := a.workers[id]
			share := 0.0
			if busyTotal > 0 {
				share = 100 * ws.BusyMs / busyTotal
			}
			t.AddRow(fmt.Sprintf("w%d", id), ws.Jobs, ws.BusyMs, stats.Percent(share))
		}
		out += t.String() + "\n"
	}

	if len(a.kinds) > 0 {
		t := stats.NewTable("artifact cache by kind", "kind", "hits", "misses", "hit rate")
		kinds := make([]string, 0, len(a.kinds))
		//lint:ignore detrange sorted just below
		for k := range a.kinds {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			ks := a.kinds[k]
			t.AddRow(k, ks.Hits, ks.Misses,
				stats.Percent(100*stats.Ratio(uint64(ks.Hits), uint64(ks.Hits+ks.Misses))))
		}
		out += t.String() + "\n"
	}

	if len(a.store) > 0 {
		// Persistent-store traffic rides the same stream (store_hit,
		// store_put, store_evict, store_quarantine); bytes are blob
		// payload sizes, zero for events that move none.
		t := stats.NewTable("persistent store activity", "event", "count", "bytes")
		evs := make([]string, 0, len(a.store))
		//lint:ignore detrange sorted just below
		for ev := range a.store {
			evs = append(evs, ev)
		}
		sort.Strings(evs)
		for _, ev := range evs {
			ss := a.store[ev]
			t.AddRow(strings.TrimPrefix(ev, "store_"), ss.Count, int(ss.Bytes))
		}
		out += t.String() + "\n"
	}

	if len(a.jobs) > 0 && top > 0 {
		// The slowest job bounds the run's wall clock at high -jobs: it is
		// the critical path to attack first (cache it, shrink it, split it).
		sorted := make([]jobStat, len(a.jobs))
		copy(sorted, a.jobs)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Ms > sorted[j].Ms })
		if top > len(sorted) {
			top = len(sorted)
		}
		t := stats.NewTable(fmt.Sprintf("slowest %d job(s) (critical path first)", top),
			"job", "ms", "instrs", "attempts", "worker")
		for _, js := range sorted[:top] {
			t.AddRow(js.Exp+"/"+js.Key, js.Ms, int(js.Instrs), js.Attempts, fmt.Sprintf("w%d", js.Worker))
		}
		out += t.String() + "\n"
	}

	if len(a.failures) > 0 {
		t := stats.NewTable("failed jobs", "job", "error")
		for _, js := range a.failures {
			t.AddRow(js.Exp+"/"+js.Key, js.Err)
		}
		out += t.String() + "\n"
	}

	if a.malformed > 0 {
		out += fmt.Sprintf("(%d of %d line(s) malformed and skipped)\n", a.malformed, a.lines)
	}
	return out
}
