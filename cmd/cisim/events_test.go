package main

import (
	"os"
	"strings"
	"testing"

	"cisim/internal/runner"
)

// TestCmdRunMetricsDeterminism: -metrics -json output is byte-identical
// across -jobs 1 and -jobs 8 with the cache reset in between — the
// snapshots are merged from per-workload partials in paper order, so
// scheduling cannot reorder them.
func TestCmdRunMetricsDeterminism(t *testing.T) {
	runner.Artifacts.Reset()
	seq, err := capture(t, func() error {
		return cmdRun([]string{"-quick", "-metrics", "-json", "-jobs", "1", "fig5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	runner.Artifacts.Reset()
	par, err := capture(t, func() error {
		return cmdRun([]string{"-quick", "-metrics", "-json", "-jobs", "8", "fig5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("-metrics output differs across -jobs (len %d vs %d)", len(seq), len(par))
	}
	for _, want := range []string{`"metrics"`, `"ooo.retired"`, `"ooo.window_occupancy"`, `"bpred.ctb.lookups"`} {
		if !strings.Contains(seq, want) {
			t.Errorf("-metrics -json output missing %s", want)
		}
	}
}

// TestCmdRunMetricsOffUnchanged: without -metrics the JSON output carries
// no metrics key at all, keeping it parseable by older consumers.
func TestCmdRunMetricsOffUnchanged(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdRun([]string{"-quick", "-json", "fig12"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, `"metrics"`) {
		t.Error("plain -json output grew a metrics key without -metrics")
	}
}

// TestCmdSimPipetrace: -pipetrace writes a deterministic trace in both
// formats, and repeated runs produce identical bytes.
func TestCmdSimPipetrace(t *testing.T) {
	dir := t.TempDir()
	run := func(path, format string) string {
		t.Helper()
		if _, err := capture(t, func() error {
			return cmdSim([]string{"-machine=CI", "-window=64", "-iters=100",
				"-pipetrace", path, "-pipetrace-format", format, "xcompress"})
		}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	k1 := run(dir+"/a.log", "kanata")
	k2 := run(dir+"/b.log", "kanata")
	if k1 != k2 {
		t.Error("kanata pipetrace differs across identical sim runs")
	}
	if !strings.HasPrefix(k1, "Kanata\t0004\n") {
		t.Errorf("missing Kanata header: %q", k1[:40])
	}
	j := run(dir+"/c.jsonl", "jsonl")
	if !strings.Contains(j, `"fetch":`) || !strings.Contains(j, `"retire":`) {
		t.Error("jsonl pipetrace missing stage fields")
	}
	if _, err := capture(t, func() error {
		return cmdSim([]string{"-pipetrace", dir + "/d", "-pipetrace-format", "wat", "-iters=50", "xgo"})
	}); err == nil {
		t.Error("unknown pipetrace format should error")
	}
}

// TestCmdSimMetrics: -metrics prints the counter and histogram tables.
func TestCmdSimMetrics(t *testing.T) {
	out, err := capture(t, func() error {
		return cmdSim([]string{"-machine=CI", "-window=64", "-iters=100", "-metrics", "xgo"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"metrics: counters", "metrics: histograms",
		"ooo.retired", "ooo.window_occupancy", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("sim -metrics output missing %q", want)
		}
	}
}

// TestCmdEvents: the analyzer summarizes a real -events stream.
func TestCmdEvents(t *testing.T) {
	f := t.TempDir() + "/events.jsonl"
	if _, err := capture(t, func() error {
		return cmdRun([]string{"-quick", "-metrics", "-events", f, "table2"})
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return cmdEvents([]string{"-top", "3", f}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"run overview", "jobs completed", "worker utilization",
		"artifact cache by kind", "slowest 3 job(s)", "table2/", "metrics snapshots"} {
		if !strings.Contains(out, want) {
			t.Errorf("events output missing %q:\n%s", want, out)
		}
	}
}

// TestCmdEventsJournal: the analyzer recognizes a -journal file.
func TestCmdEventsJournal(t *testing.T) {
	f := t.TempDir() + "/journal.jsonl"
	if _, err := capture(t, func() error {
		return cmdRun([]string{"-quick", "-journal", f, "table1"})
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return cmdEvents([]string{f}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "journal: 5 completed job(s)") || !strings.Contains(out, "table1") {
		t.Errorf("events journal output unexpected:\n%s", out)
	}
}

// TestCmdEventsBadArgs: missing and empty inputs error cleanly.
func TestCmdEventsBadArgs(t *testing.T) {
	if _, err := capture(t, func() error { return cmdEvents(nil) }); err == nil {
		t.Error("events with no file should error")
	}
	if _, err := capture(t, func() error { return cmdEvents([]string{"/no/such/file"}) }); err == nil {
		t.Error("events with a missing file should error")
	}
	empty := t.TempDir() + "/empty.jsonl"
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error { return cmdEvents([]string{empty}) }); err == nil {
		t.Error("events with an empty file should error")
	}
}

// TestCmdRunProfiles: the profiling hooks write non-empty artifacts.
func TestCmdRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu, mem, exec := dir+"/cpu.pprof", dir+"/mem.pprof", dir+"/trace.out"
	if _, err := capture(t, func() error {
		return cmdRun([]string{"-quick", "-cpuprofile", cpu, "-memprofile", mem,
			"-exectrace", exec, "table1"})
	}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem, exec} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("profile artifact missing: %v", err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("profile artifact %s is empty", path)
		}
	}
}
