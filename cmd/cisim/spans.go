package main

// cisim spans: offline analyzer for span traces — the JSONL written by
// `cisim run -spans FILE` or served by a daemon's /v1/sweeps/{id}/spans
// endpoint. Where `cisim events` aggregates the event stream, this
// command walks the span tree: what the wall clock was spent on
// (per-stage breakdown), which chain of jobs bounded it (critical
// path), and where time leaked into waiting (pool queue, store lock).
// -chrome re-exports the trace for chrome://tracing or Perfetto.

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cisim/internal/stats"
	"cisim/internal/telemetry"
)

// writeSpans writes a span trace as JSONL, the run -spans output path.
func writeSpans(path string, recs []telemetry.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteJSONL(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdSpans(args []string) error {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	top := fs.Int("top", 5, "slowest jobs to list")
	chrome := fs.String("chrome", "", "also export a Chrome trace-event file (chrome://tracing, Perfetto)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("spans needs one JSONL source: a file from 'cisim run -spans FILE' or a serve daemon's /v1/sweeps/{id}/spans URL")
	}
	src, name, err := openEventSource(fs.Arg(0))
	if err != nil {
		return err
	}
	defer src.Close()
	recs, err := telemetry.ReadJSONL(src)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s: no span records", name)
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			return err
		}
		if err := telemetry.WriteChrome(f, recs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cisim: chrome trace written to %s (load in chrome://tracing or Perfetto)\n", *chrome)
	}
	fmt.Print(renderSpanAnalysis(recs, *top))
	return nil
}

// nameAgg accumulates one span name's durations.
type nameAgg struct {
	count   int
	totalUs float64
	maxUs   float64
}

func renderSpanAnalysis(recs []telemetry.Record, top int) string {
	byName := map[string]*nameAgg{}
	var jobs []telemetry.Record
	var sweep *telemetry.Record
	var queueUs, lockWaitUs float64
	var bytesRead, bytesWritten int64
	var failed []telemetry.Record
	for i := range recs {
		r := recs[i]
		na := byName[r.Name]
		if na == nil {
			na = &nameAgg{}
			byName[r.Name] = na
		}
		na.count++
		na.totalUs += r.DurUs
		if r.DurUs > na.maxUs {
			na.maxUs = r.DurUs
		}
		switch r.Name {
		case "sweep":
			if sweep == nil {
				sweep = &recs[i]
			}
		case "job":
			jobs = append(jobs, r)
			queueUs += r.QueueUs
		case "serve:sweep", "client:sweep":
			queueUs += r.QueueUs
		case "store:lock_wait":
			lockWaitUs += r.DurUs
		case "store:get":
			bytesRead += r.Bytes
		case "store:put":
			bytesWritten += r.Bytes
		}
		if r.Err != "" {
			failed = append(failed, r)
		}
	}

	// The critical-path total is the sweep span — it brackets exactly the
	// pool interval the run footer reports as wall clock. A trace without
	// one (truncated file) falls back to the full span extent.
	wallUs := spanExtentUs(recs)
	if sweep != nil {
		wallUs = sweep.DurUs
	}

	out := ""
	ot := stats.NewTable(fmt.Sprintf("span trace %s", recs[0].Trace), "metric", "value")
	ot.AddRow("span records", len(recs))
	ot.AddRow("critical-path total (ms)", wallUs/1e3)
	ot.AddRow("job spans", len(jobs))
	if queueUs > 0 {
		ot.AddRow("queue wait total (ms)", queueUs/1e3)
	}
	if lockWaitUs > 0 {
		ot.AddRow("store lock wait total (ms)", lockWaitUs/1e3)
	}
	if bytesRead > 0 {
		ot.AddRow("store bytes read", int(bytesRead))
	}
	if bytesWritten > 0 {
		ot.AddRow("store bytes written", int(bytesWritten))
	}
	if len(failed) > 0 {
		ot.AddRow("failed spans", len(failed))
	}
	out += ot.String() + "\n"

	// Per-name breakdown, busiest first. Totals overlap (a job span
	// contains its stage spans) — this is attribution, not a partition.
	names := make([]string, 0, len(byName))
	//lint:ignore detrange sorted just below
	for n := range byName {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := byName[names[i]], byName[names[j]]
		if a.totalUs != b.totalUs {
			return a.totalUs > b.totalUs
		}
		return names[i] < names[j]
	})
	bt := stats.NewTable("time by span name (nested spans overlap)", "name", "count", "total ms", "mean ms", "max ms")
	for _, n := range names {
		na := byName[n]
		bt.AddRow(n, na.count, na.totalUs/1e3, na.totalUs/float64(na.count)/1e3, na.maxUs/1e3)
	}
	out += bt.String() + "\n"

	if chain := criticalChain(jobs); len(chain) > 0 {
		var chainUs float64
		for _, r := range chain {
			chainUs += r.DurUs
		}
		share := 0.0
		if wallUs > 0 {
			share = 100 * chainUs / wallUs
		}
		ct := stats.NewTable(
			fmt.Sprintf("critical path through jobs (%d link(s), %.1f%% of wall)", len(chain), share),
			"job", "start ms", "ms", "worker")
		for _, r := range chain {
			ct.AddRow(r.Exp+"/"+r.Key, r.TUs/1e3, r.DurUs/1e3, fmt.Sprintf("w%d", r.Worker))
		}
		out += ct.String() + "\n"
	}

	if len(jobs) > 0 && top > 0 {
		sorted := make([]telemetry.Record, len(jobs))
		copy(sorted, jobs)
		sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].DurUs > sorted[j].DurUs })
		if top > len(sorted) {
			top = len(sorted)
		}
		st := stats.NewTable(fmt.Sprintf("slowest %d job span(s)", top),
			"job", "ms", "queue ms", "attempt", "worker")
		for _, r := range sorted[:top] {
			attempt := r.Attempt
			if attempt == 0 {
				attempt = 1 // only stamped on retries, like job events
			}
			st.AddRow(r.Exp+"/"+r.Key, r.DurUs/1e3, r.QueueUs/1e3, attempt, fmt.Sprintf("w%d", r.Worker))
		}
		out += st.String() + "\n"
	}

	if len(failed) > 0 {
		ft := stats.NewTable("failed spans", "name", "context", "error")
		for _, r := range failed {
			ctx := r.Exp
			if r.Key != "" {
				ctx += "/" + r.Key
			}
			if ctx == "" {
				ctx = r.Addr
			}
			ft.AddRow(r.Name, ctx, r.Err)
		}
		out += ft.String() + "\n"
	}
	return out
}

// spanExtentUs is the duration from the earliest span start to the
// latest span end — the fallback wall clock for traces with no sweep
// span.
func spanExtentUs(recs []telemetry.Record) float64 {
	minT, maxEnd := recs[0].TUs, recs[0].End()
	for _, r := range recs[1:] {
		if r.TUs < minT {
			minT = r.TUs
		}
		if r.End() > maxEnd {
			maxEnd = r.End()
		}
	}
	return maxEnd - minT
}

// criticalChain walks backward from the latest-finishing job span
// through the latest-finishing job that ended before each link started,
// yielding the chain of non-overlapping jobs that bounded the sweep's
// wall clock (returned in chronological order). With enough workers the
// chain is one link — the slowest job; near the serial limit it covers
// most of the wall.
func criticalChain(jobs []telemetry.Record) []telemetry.Record {
	if len(jobs) == 0 {
		return nil
	}
	sorted := make([]telemetry.Record, len(jobs))
	copy(sorted, jobs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].End() < sorted[j].End() })
	cur := sorted[len(sorted)-1]
	chain := []telemetry.Record{cur}
	for {
		var prev *telemetry.Record
		for i := len(sorted) - 1; i >= 0; i-- {
			if sorted[i].End() <= cur.TUs {
				prev = &sorted[i]
				break
			}
		}
		if prev == nil {
			break
		}
		cur = *prev
		chain = append(chain, cur)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}
