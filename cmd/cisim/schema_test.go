package main

// Golden-schema tests for the run-event stream. The JSONL written by
// `cisim run -events` is a public interface — scripts, CI, and `cisim
// events` parse it by field name — so its shape is pinned in
// testdata/event_schema.json and checked two ways: the schema's field
// list must match runner.Event's json tags exactly (both directions),
// and every line of a real run must satisfy the per-event-type
// required/optional matrix. Renaming a field or changing an event's
// guarantees fails here until the schema is updated deliberately.

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"cisim/internal/runner"
)

type eventSpec struct {
	Required []string `json:"required"`
	Optional []string `json:"optional"`
}

type eventSchema struct {
	Fields map[string]string    `json:"fields"`
	Events map[string]eventSpec `json:"events"`
}

func loadSchema(t *testing.T) *eventSchema {
	t.Helper()
	data, err := os.ReadFile("testdata/event_schema.json")
	if err != nil {
		t.Fatal(err)
	}
	var s eventSchema
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("parsing event_schema.json: %v", err)
	}
	return &s
}

// TestEventSchemaMatchesStruct: the schema's field inventory and
// runner.Event's json tags are the same set.
func TestEventSchemaMatchesStruct(t *testing.T) {
	s := loadSchema(t)
	tags := map[string]bool{}
	typ := reflect.TypeOf(runner.Event{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		name := strings.Split(f.Tag.Get("json"), ",")[0]
		if name == "" || name == "-" {
			t.Fatalf("Event.%s has no json tag; every field must serialize under a documented name", f.Name)
		}
		tags[name] = true
		if _, ok := s.Fields[name]; !ok {
			t.Errorf("Event.%s serializes as %q, which event_schema.json does not list — add it", f.Name, name)
		}
	}
	var stale []string
	//lint:ignore detrange sorted just below
	for name := range s.Fields {
		if !tags[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		t.Errorf("event_schema.json lists %q, which runner.Event no longer has — remove it", name)
	}
	for ev, spec := range s.Events {
		for _, name := range append(append([]string{}, spec.Required...), spec.Optional...) {
			if _, ok := s.Fields[name]; !ok {
				t.Errorf("event %q references field %q missing from the field inventory", ev, name)
			}
		}
	}
}

// jsonType names a decoded JSON value's type the way the schema does.
func jsonType(v interface{}) string {
	switch v.(type) {
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "boolean"
	case map[string]interface{}:
		return "object"
	case []interface{}:
		return "array"
	case nil:
		return "null"
	}
	return fmt.Sprintf("%T", v)
}

// TestEventStreamMatchesSchema runs a real metrics-collecting quick run
// and validates every emitted line against the matrix: required fields
// present, no field outside required+optional, types as declared.
func TestEventStreamMatchesSchema(t *testing.T) {
	s := loadSchema(t)
	f := t.TempDir() + "/events.jsonl"
	runner.Artifacts.Reset()
	if _, err := capture(t, func() error {
		return cmdRun([]string{"-quick", "-metrics", "-events", f, "fig5"})
	}); err != nil {
		t.Fatal(err)
	}
	seen := validateEventStream(t, s, f)
	for _, want := range []string{"run_start", "job_start", "job_end", "cache", "metrics", "run_end"} {
		if !seen[want] {
			t.Errorf("validation run emitted no %s event; the matrix for it went unchecked", want)
		}
	}
}

// TestEventStreamStoreEvents repeats the stream validation with a
// persistent store attached: a cold run must emit store_put lines, a
// warm run from a fresh in-memory cache must emit store_hit lines, and
// every line must still satisfy the schema matrix.
func TestEventStreamStoreEvents(t *testing.T) {
	s := loadSchema(t)
	dir := t.TempDir()
	cache := dir + "/store"
	cold, warm := dir+"/cold.jsonl", dir+"/warm.jsonl"
	for _, run := range []struct{ events string }{{cold}, {warm}} {
		runner.Artifacts.Reset()
		if _, err := capture(t, func() error {
			return cmdRun([]string{"-quick", "-events", run.events, "-cache-dir", cache, "fig5"})
		}); err != nil {
			t.Fatal(err)
		}
	}
	if seen := validateEventStream(t, s, cold); !seen["store_put"] {
		t.Error("cold store-backed run emitted no store_put event")
	}
	if seen := validateEventStream(t, s, warm); !seen["store_hit"] {
		t.Error("warm store-backed run emitted no store_hit event")
	}
}

// validateEventStream checks every line of an events file against the
// schema matrix and returns the set of event types observed.
func validateEventStream(t *testing.T, s *eventSchema, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable event line %q: %v", line, err)
		}
		ev, _ := m["ev"].(string)
		spec, ok := s.Events[ev]
		if !ok {
			t.Fatalf("run emitted event type %q that event_schema.json does not document: %s", ev, line)
		}
		seen[ev] = true
		allowed := map[string]bool{}
		for _, name := range spec.Required {
			allowed[name] = true
			if _, ok := m[name]; !ok {
				t.Errorf("%s event missing required field %q: %s", ev, name, line)
			}
		}
		for _, name := range spec.Optional {
			allowed[name] = true
		}
		var got []string
		//lint:ignore detrange sorted just below
		for name := range m {
			got = append(got, name)
		}
		sort.Strings(got)
		for _, name := range got {
			if !allowed[name] {
				t.Errorf("%s event carries field %q the schema does not allow for it: %s", ev, name, line)
			}
			if want, ok := s.Fields[name]; ok {
				if jt := jsonType(m[name]); jt != want {
					t.Errorf("field %q is %s, schema says %s: %s", name, jt, want, line)
				}
			}
		}
	}
	return seen
}
