package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cisim/internal/faults"
	"cisim/internal/runner"
)

// runQuiet runs cmdRun with a cold artifact cache and both stdout and
// stderr captured, returning stdout. Faults are cleared afterwards even
// if cmdRun bails before its own deferred Clear.
func runQuiet(t *testing.T, args ...string) (string, error) {
	t.Helper()
	runner.Artifacts.Reset()
	defer faults.Clear()
	oldErr := os.Stderr
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = devnull
	defer func() {
		os.Stderr = oldErr
		devnull.Close()
	}()
	return capture(t, func() error { return cmdRun(args) })
}

// countEvents tallies event kinds in a JSONL events file.
func countEvents(t *testing.T, path string) map[string]int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var ev struct {
			Ev string `json:"ev"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		counts[ev.Ev]++
	}
	return counts
}

// TestFaultMatrix drives every fault point through a real (quick)
// experiment run and checks the recovery contract: recoverable faults
// (cache corruption, transient failures) leave the output byte-identical
// to an uninjected run; unrecoverable ones (permanent failure, timeout,
// panic, abort) fail loudly with the right diagnostics. fig5 re-reads
// its program and prep artifacts across simulations, so a corrupted
// store is guaranteed to be detected.
func TestFaultMatrix(t *testing.T) {
	dir := t.TempDir()
	baselines := map[string]string{}
	for _, id := range []string{"fig5", "table1"} {
		out, err := runQuiet(t, "-quick", "-json", id)
		if err != nil {
			t.Fatalf("baseline %s: %v", id, err)
		}
		baselines[id] = out
	}

	cases := []struct {
		name      string
		exp       string   // experiment id ("" means fig5)
		extra     []string // flags beyond -quick -json <exp>
		identical bool     // stdout must match the baseline byte for byte
		wantErr   string   // "" means the run must succeed
		events    map[string]int
	}{
		{
			name:      "cache corruption self-heals",
			extra:     []string{"-faults", "cache-corrupt"},
			identical: true,
			events:    map[string]int{"cache_corrupt": 1},
		},
		{
			// table1, not fig5: it is the experiment that generates
			// traces, where the emulator step budget can run out.
			name:      "transient trace budget retries",
			exp:       "table1",
			extra:     []string{"-faults", "trace-budget", "-retries", "2"},
			identical: true,
			events:    map[string]int{"job_retry": 1},
		},
		{
			name:      "transient job failure retries",
			extra:     []string{"-faults", "job-transient", "-retries", "1"},
			identical: true,
			events:    map[string]int{"job_retry": 1},
		},
		{
			name:    "permanent job failure surfaces",
			extra:   []string{"-faults", "job-permanent"},
			wantErr: "injected permanent job failure",
		},
		{
			name:    "hung job hits its deadline",
			extra:   []string{"-faults", "job-hang", "-timeout", "100ms"},
			wantErr: "job deadline exceeded",
			events:  map[string]int{"job_stall": 1},
		},
		{
			name:    "job panic is contained",
			extra:   []string{"-faults", "job-panic"},
			wantErr: "panicked",
		},
		{
			name:    "abort drains and reports holes",
			extra:   []string{"-faults", "run-abort@3", "-jobs", "1"},
			wantErr: "run aborted before completion",
			events:  map[string]int{"run_abort": 1},
		},
	}
	for i, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			expID := tc.exp
			if expID == "" {
				expID = "fig5"
			}
			evFile := filepath.Join(dir, tc.name+".jsonl")
			args := append([]string{"-quick", "-json", "-events", evFile}, tc.extra...)
			args = append(args, expID)
			out, err := runQuiet(t, args...)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("run failed: %v", err)
				}
			} else {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
				}
			}
			if tc.identical && out != baselines[expID] {
				t.Errorf("output diverged from the uninjected baseline (case %d)", i)
			}
			counts := countEvents(t, evFile)
			for ev, want := range tc.events {
				if counts[ev] < want {
					t.Errorf("events[%s] = %d, want >= %d (all: %v)", ev, counts[ev], want, counts)
				}
			}
		})
	}
}

// TestFaultMatrixPanicKeepsStack: a fault-injected job panic surfaces
// with its stack trace on the event stream, not just the message.
func TestFaultMatrixPanicKeepsStack(t *testing.T) {
	evFile := filepath.Join(t.TempDir(), "ev.jsonl")
	_, err := runQuiet(t, "-quick", "-json", "-events", evFile, "-faults", "job-panic", "fig5")
	if err == nil {
		t.Fatal("panicking job should fail the run")
	}
	data, err := os.ReadFile(evFile)
	if err != nil {
		t.Fatal(err)
	}
	var sawStack bool
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev struct {
			Ev    string `json:"ev"`
			Stack string `json:"stack"`
		}
		if json.Unmarshal([]byte(line), &ev) == nil && ev.Ev == "job_end" && strings.Contains(ev.Stack, "goroutine") {
			sawStack = true
		}
	}
	if !sawStack {
		t.Error("no job_end event carried the panic stack")
	}
}

// TestRunBadFaultSpec: an unknown fault point is rejected up front with
// the known vocabulary, not silently ignored.
func TestRunBadFaultSpec(t *testing.T) {
	_, err := runQuiet(t, "-quick", "-faults", "no-such-point", "table1")
	if err == nil || !strings.Contains(err.Error(), "unknown point") {
		t.Fatalf("error = %v, want unknown point", err)
	}
	if !strings.Contains(err.Error(), "cache-corrupt") {
		t.Errorf("error does not list the known points: %v", err)
	}
}

// TestJournalResume is the crash-recovery acceptance path: a journaled
// campaign is killed mid-write (simulated by tearing the journal's last
// record), and -resume recomputes only the lost job, producing output
// byte-identical to an uninterrupted run.
func TestJournalResume(t *testing.T) {
	dir := t.TempDir()
	jfile := filepath.Join(dir, "run.journal")

	baseline, err := runQuiet(t, "-quick", "-json", "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runQuiet(t, "-quick", "-json", "-journal", jfile, "fig5"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jfile)
	if err != nil {
		t.Fatal(err)
	}
	jobs := strings.Count(string(data), "\n")
	if jobs < 2 {
		t.Fatalf("journal holds %d records, need >= 2 for a meaningful tear", jobs)
	}

	// Crash simulation: the process died 10 bytes into fsyncing the last
	// record.
	if err := os.Truncate(jfile, int64(len(data)-10)); err != nil {
		t.Fatal(err)
	}

	evFile := filepath.Join(dir, "resume.jsonl")
	out, err := runQuiet(t, "-quick", "-json", "-journal", jfile, "-resume", "-events", evFile, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if out != baseline {
		t.Error("resumed output differs from an uninterrupted run")
	}
	counts := countEvents(t, evFile)
	if counts["job_skip"] != jobs-1 {
		t.Errorf("job_skip = %d, want %d (only the torn record recomputes)", counts["job_skip"], jobs-1)
	}
	if counts["job_start"] != 1 {
		t.Errorf("job_start = %d, want 1", counts["job_start"])
	}

	// The journal is whole again: a further resume recomputes nothing.
	evFile2 := filepath.Join(dir, "resume2.jsonl")
	out, err = runQuiet(t, "-quick", "-json", "-journal", jfile, "-resume", "-events", evFile2, "fig5")
	if err != nil || out != baseline {
		t.Fatalf("second resume: err=%v identical=%v", err, out == baseline)
	}
	counts = countEvents(t, evFile2)
	if counts["job_start"] != 0 || counts["job_skip"] != jobs {
		t.Errorf("second resume ran jobs: %v", counts)
	}
}

// TestJournalResumeAfterAbort: an aborted journaled campaign resumes
// with only the unfinished jobs and converges on the uninterrupted
// output — the full kill-mid-flight acceptance criterion, driven by the
// run-abort fault instead of an actual SIGINT.
func TestJournalResumeAfterAbort(t *testing.T) {
	dir := t.TempDir()
	jfile := filepath.Join(dir, "run.journal")

	baseline, err := runQuiet(t, "-quick", "-json", "fig5")
	if err != nil {
		t.Fatal(err)
	}
	_, err = runQuiet(t, "-quick", "-json", "-jobs", "1", "-journal", jfile, "-faults", "run-abort@3", "fig5")
	if err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("aborted run error = %v", err)
	}
	data, err := os.ReadFile(jfile)
	if err != nil {
		t.Fatal(err)
	}
	done := strings.Count(string(data), "\n")
	if done == 0 {
		t.Fatal("abort journaled nothing; the drained jobs should have been recorded")
	}

	evFile := filepath.Join(dir, "resume.jsonl")
	out, err := runQuiet(t, "-quick", "-json", "-journal", jfile, "-resume", "-events", evFile, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if out != baseline {
		t.Error("post-abort resume differs from an uninterrupted run")
	}
	if counts := countEvents(t, evFile); counts["job_skip"] != done {
		t.Errorf("job_skip = %d, want %d (the journaled jobs)", counts["job_skip"], done)
	}
}

// TestRunResumeNeedsJournal: -resume without -journal is a usage error.
func TestRunResumeNeedsJournal(t *testing.T) {
	if _, err := runQuiet(t, "-quick", "-resume", "table1"); err == nil {
		t.Error("-resume without -journal should error")
	}
}
