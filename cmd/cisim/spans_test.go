package main

// Golden-schema and behavior tests for span tracing (`cisim run -spans`
// and the `cisim spans` analyzer). Mirrors schema_test.go: the span
// JSONL is a public interface, so its shape is pinned in
// testdata/span_schema.json and checked against telemetry.Record's json
// tags in both directions, and every line of a real traced run must
// satisfy the per-span-name required/optional matrix. The determinism
// contract — run results byte-identical with tracing on or off, at any
// -jobs value, cold or warm store — is enforced here too.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"

	"cisim/internal/api"
	"cisim/internal/runner"
	"cisim/internal/telemetry"
)

type spanSchema struct {
	Fields map[string]string    `json:"fields"`
	Spans  map[string]eventSpec `json:"spans"`
}

func loadSpanSchema(t *testing.T) *spanSchema {
	t.Helper()
	data, err := os.ReadFile("testdata/span_schema.json")
	if err != nil {
		t.Fatal(err)
	}
	var s spanSchema
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("parsing span_schema.json: %v", err)
	}
	return &s
}

// TestSpanSchemaMatchesStruct: the schema's field inventory and
// telemetry.Record's json tags are the same set.
func TestSpanSchemaMatchesStruct(t *testing.T) {
	s := loadSpanSchema(t)
	tags := map[string]bool{}
	typ := reflect.TypeOf(telemetry.Record{})
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		name := strings.Split(f.Tag.Get("json"), ",")[0]
		if name == "" || name == "-" {
			t.Fatalf("Record.%s has no json tag; every field must serialize under a documented name", f.Name)
		}
		tags[name] = true
		if _, ok := s.Fields[name]; !ok {
			t.Errorf("Record.%s serializes as %q, which span_schema.json does not list — add it", f.Name, name)
		}
	}
	var stale []string
	//lint:ignore detrange sorted just below
	for name := range s.Fields {
		if !tags[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		t.Errorf("span_schema.json lists %q, which telemetry.Record no longer has — remove it", name)
	}
	for sp, spec := range s.Spans {
		for _, name := range append(append([]string{}, spec.Required...), spec.Optional...) {
			if _, ok := s.Fields[name]; !ok {
				t.Errorf("span %q references field %q missing from the field inventory", sp, name)
			}
		}
	}
}

// validateSpanStream checks every line of a span file against the
// schema matrix and returns the set of span names observed.
func validateSpanStream(t *testing.T, s *spanSchema, path string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("unparseable span line %q: %v", line, err)
		}
		name, _ := m["name"].(string)
		spec, ok := s.Spans[name]
		if !ok {
			t.Fatalf("run emitted span name %q that span_schema.json does not document: %s", name, line)
		}
		seen[name] = true
		allowed := map[string]bool{}
		for _, f := range spec.Required {
			allowed[f] = true
			if _, ok := m[f]; !ok {
				t.Errorf("%s span missing required field %q: %s", name, f, line)
			}
		}
		for _, f := range spec.Optional {
			allowed[f] = true
		}
		var got []string
		//lint:ignore detrange sorted just below
		for f := range m {
			got = append(got, f)
		}
		sort.Strings(got)
		for _, f := range got {
			if !allowed[f] {
				t.Errorf("%s span carries field %q the schema does not allow for it: %s", name, f, line)
			}
			if want, ok := s.Fields[f]; ok {
				if jt := jsonType(m[f]); jt != want {
					t.Errorf("field %q is %s, schema says %s: %s", f, jt, want, line)
				}
			}
		}
	}
	return seen
}

// TestSpanStreamMatchesSchema traces a cold store-backed run and a warm
// one and validates every span line against the matrix. The cold run
// must show the write path (store:put, store:lock_wait, pipeline
// stages); the warm run, after resetting the in-memory cache, the read
// path (store:get).
func TestSpanStreamMatchesSchema(t *testing.T) {
	s := loadSpanSchema(t)
	dir := t.TempDir()
	cache := dir + "/store"
	cold, warm := dir+"/cold.spans.jsonl", dir+"/warm.spans.jsonl"
	for _, spans := range []string{cold, warm} {
		runner.Artifacts.Reset()
		if _, err := capture(t, func() error {
			return cmdRun([]string{"-quick", "-spans", spans, "-cache-dir", cache, "fig5"})
		}); err != nil {
			t.Fatal(err)
		}
	}
	seenCold := validateSpanStream(t, s, cold)
	for _, want := range []string{"sweep", "job", "merge", "stage:sim", "store:put", "store:lock_wait"} {
		if !seenCold[want] {
			t.Errorf("cold traced run emitted no %s span; got %v", want, seenCold)
		}
	}
	if seenWarm := validateSpanStream(t, s, warm); !seenWarm["store:get"] {
		t.Errorf("warm traced run emitted no store:get span; got %v", seenWarm)
	}
}

// TestSpanParentage: every span in a traced run references its trace
// and an existing parent, and the sweep span is the lone root.
func TestSpanParentage(t *testing.T) {
	f := t.TempDir() + "/run.spans.jsonl"
	runner.Artifacts.Reset()
	if _, err := capture(t, func() error {
		return cmdRun([]string{"-quick", "-spans", f, "table1"})
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadJSONL(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	trace := recs[0].Trace
	for _, r := range recs {
		ids[r.Span] = true
		if r.Trace != trace {
			t.Errorf("span %s has trace %q, others %q", r.Span, r.Trace, trace)
		}
	}
	roots := 0
	for _, r := range recs {
		if r.Parent == "" {
			roots++
			if r.Name != "sweep" {
				t.Errorf("root span is %q, want sweep", r.Name)
			}
			continue
		}
		if !ids[r.Parent] {
			t.Errorf("span %s (%s) parent %q not in the trace", r.Span, r.Name, r.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("trace has %d roots, want exactly 1 (the sweep)", roots)
	}
}

// TestSpansByteIdentity: `run -json` output is byte-identical with
// tracing on or off, at different -jobs values, against a cold and a
// warm persistent store — spans are a pure side channel.
func TestSpansByteIdentity(t *testing.T) {
	dir := t.TempDir()
	cache := dir + "/store"
	run := func(extra ...string) string {
		runner.Artifacts.Reset()
		args := append([]string{"-quick", "-json", "-cache-dir", cache}, extra...)
		args = append(args, "fig5")
		out, err := capture(t, func() error { return cmdRun(args) })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := run() // cold store, no tracing
	for i, variant := range []struct {
		name  string
		extra []string
	}{
		{"warm traced", []string{"-spans", dir + "/a.jsonl"}},
		{"warm traced jobs=1", []string{"-spans", dir + "/b.jsonl", "-jobs", "1"}},
		{"warm traced jobs=4", []string{"-spans", dir + "/c.jsonl", "-jobs", "4"}},
		{"warm untraced", nil},
	} {
		if got := run(variant.extra...); got != base {
			t.Errorf("variant %d (%s): -json output differs from the untraced cold run", i, variant.name)
		}
	}
}

// TestSweepSpanMatchesWall: the sweep span — the `cisim spans`
// critical-path total — brackets the pool interval the run footer
// reports as wall clock, within 5%.
func TestSweepSpanMatchesWall(t *testing.T) {
	col := telemetry.NewCollector(telemetry.TraceID("test wall"))
	telemetry.Enable(col)
	defer telemetry.Disable()
	runner.Artifacts.Reset()
	req := &api.SweepRequest{V: api.Version, Experiments: []string{"table1"}, Quick: true}
	out, err := api.Run(context.Background(), req, api.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sweepUs float64
	for _, r := range col.Records() {
		if r.Name == "sweep" {
			sweepUs = r.DurUs
		}
	}
	if sweepUs == 0 {
		t.Fatal("no sweep span recorded")
	}
	wallUs := telemetry.Us(out.Summary.Wall)
	diff := sweepUs - wallUs
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.05*wallUs {
		t.Errorf("sweep span %.0fµs vs footer wall %.0fµs: off by more than 5%%", sweepUs, wallUs)
	}
}

// TestCmdSpansAnalyzer: the analyzer renders the expected tables from a
// real trace and the -chrome export is structurally valid.
func TestCmdSpansAnalyzer(t *testing.T) {
	dir := t.TempDir()
	spans := dir + "/run.spans.jsonl"
	chrome := dir + "/run.chrome.json"
	runner.Artifacts.Reset()
	if _, err := capture(t, func() error {
		return cmdRun([]string{"-quick", "-spans", spans, "table1"})
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return cmdSpans([]string{"-chrome", chrome, spans})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"span trace", "critical-path total (ms)", "time by span name",
		"critical path through jobs", "slowest"} {
		if !strings.Contains(out, want) {
			t.Errorf("spans output missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Pid  int                    `json:"pid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	metas, completes := 0, 0
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
			if e.Name != "thread_name" {
				t.Errorf("meta event named %q", e.Name)
			}
		case "X":
			completes++
			if e.Ts < 0 || e.Dur < 0 || e.Pid != 1 {
				t.Errorf("malformed complete event: %+v", e)
			}
			if e.Args["span"] == nil {
				t.Errorf("complete event %q lost its span ID", e.Name)
			}
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if metas == 0 || completes == 0 {
		t.Errorf("chrome export has %d meta and %d complete events", metas, completes)
	}
}

// TestCmdSpansRejectsGarbage: truncated or non-span input is a clear
// error, not a half-rendered report.
func TestCmdSpansRejectsGarbage(t *testing.T) {
	bad := t.TempDir() + "/bad.jsonl"
	if err := os.WriteFile(bad, []byte("{\"not\":\"a span\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error { return cmdSpans([]string{bad}) }); err == nil {
		t.Error("span file without trace/span/name fields should be rejected")
	}
	if _, err := capture(t, func() error { return cmdSpans([]string{bad + ".missing"}) }); err == nil {
		t.Error("missing file should be an error")
	}
}
