package main

import (
	"flag"
	"fmt"
	"os"

	"cisim/internal/ooo"
)

func cmdPipe(args []string) error {
	fs := flag.NewFlagSet("pipe", flag.ExitOnError)
	file := fs.Bool("file", false, "treat the argument as an assembly source file")
	machine := fs.String("machine", "CI", "BASE, CI, or CI-I")
	window := fs.Int("window", 64, "reorder buffer entries")
	iters := fs.Int("iters", 0, "workload iterations (0 = default)")
	start := fs.Int("start", 0, "first retired instruction to show")
	n := fs.Int("n", 48, "instructions to show")
	width := fs.Int("width", 96, "timeline width in cycles/columns")
	kanata := fs.String("kanata", "", "write a Kanata log (for the Konata visualizer) to this file instead of printing a timeline")
	squashed := fs.Bool("squashed", false, "also record squashed wrong-path instructions (rows marked Q/squashed; Kanata flushes)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("pipe needs a workload name (or -file path)")
	}
	p, err := loadProgram(*file, fs.Arg(0), *iters)
	if err != nil {
		return err
	}
	cfg := ooo.Config{
		WindowSize:     *window,
		RecordPipeline: true,
		RecordSquashed: *squashed,
		PipelineLimit:  *start + *n,
	}
	switch *machine {
	case "BASE":
		cfg.Machine = ooo.Base
	case "CI":
		cfg.Machine = ooo.CI
	case "CI-I":
		cfg.Machine = ooo.CIInstant
	default:
		return fmt.Errorf("unknown machine %q", *machine)
	}
	r, err := ooo.Run(p, cfg)
	if err != nil {
		return err
	}
	recs := r.Pipeline
	if *start >= len(recs) {
		return fmt.Errorf("start %d beyond %d recorded instructions", *start, len(recs))
	}
	recs = recs[*start:]
	if len(recs) > *n {
		recs = recs[:*n]
	}
	if *kanata != "" {
		f, err := os.Create(*kanata)
		if err != nil {
			return err
		}
		if err := ooo.WriteKanata(f, recs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d instructions to %s (Kanata 0004)\n", len(recs), *kanata)
		return nil
	}
	fmt.Printf("%v on %s, window %d — F fetch, I (last) issue, C complete, R retire;\n"+
		"xN = issued N times, s = survived a recovery, r = survived then reissued\n\n",
		cfg.Machine, fs.Arg(0), *window)
	fmt.Print(ooo.RenderPipeline(recs, *width))
	return nil
}
