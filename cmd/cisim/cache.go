package main

// cisim cache: operator tooling for the persistent artifact store
// (-cache-dir / CISIM_CACHE_DIR; internal/store, DESIGN.md §13).
//
//	cisim cache stats  [-cache-dir DIR] [-json]     usage + lifetime log
//	cisim cache verify [-cache-dir DIR] [-quarantine]  read-check blobs
//	cisim cache gc     [-cache-dir DIR] [-max-bytes N] [-max-age D] [-dry-run]

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"cisim/internal/runner"
	"cisim/internal/stats"
	"cisim/internal/store"
)

// attachStore opens the persistent artifact store named by the
// -cache-dir flag (or, when that is empty, CISIM_CACHE_DIR) and mounts
// it behind the process-wide artifact cache. The returned detach closes
// the store and unhooks it; with no directory configured it is a no-op
// and runs stay purely in-memory.
func attachStore(dir string) (func(), error) {
	if dir == "" {
		dir = os.Getenv("CISIM_CACHE_DIR")
	}
	if dir == "" {
		return func() {}, nil
	}
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		return nil, err
	}
	runner.Artifacts.SetStore(st)
	return func() {
		runner.Artifacts.SetStore(nil)
		st.Close()
	}, nil
}

// storeDir resolves the store directory for the standalone cache
// subcommands, which need one explicitly (flag or env) rather than
// silently operating on nothing.
func storeDir(flagVal string) (string, error) {
	if flagVal != "" {
		return flagVal, nil
	}
	if env := os.Getenv("CISIM_CACHE_DIR"); env != "" {
		return env, nil
	}
	return "", fmt.Errorf("cache needs -cache-dir DIR (or CISIM_CACHE_DIR)")
}

func cmdCache(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("cache needs a subcommand: stats, verify, or gc")
	}
	switch args[0] {
	case "stats":
		return cmdCacheStats(args[1:])
	case "verify":
		return cmdCacheVerify(args[1:])
	case "gc":
		return cmdCacheGC(args[1:])
	default:
		return fmt.Errorf("unknown cache subcommand %q (want stats, verify, or gc)", args[0])
	}
}

func cmdCacheStats(args []string) error {
	fs := flag.NewFlagSet("cache stats", flag.ExitOnError)
	dirFlag := fs.String("cache-dir", "", "store directory (or CISIM_CACHE_DIR)")
	jsonFlag := fs.Bool("json", false, "emit the report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir, err := storeDir(*dirFlag)
	if err != nil {
		return err
	}
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		return err
	}
	defer st.Close()
	rep, err := st.Stats()
	if err != nil {
		return err
	}
	if *jsonFlag {
		// One flat object, so CI smoke checks assert on fields with a
		// one-line jq/python expression instead of grepping rendered
		// tables. Keys are stable: encoding/json sorts map keys.
		flat := map[string]interface{}{
			"dir":                    rep.Dir,
			"version":                rep.Version,
			"entries":                rep.Entries,
			"bytes":                  rep.Bytes,
			"lifetime_puts":          rep.Life.Puts,
			"lifetime_evictions":     rep.Life.Evictions,
			"lifetime_quarantines":   rep.Life.Quarantines,
			"lifetime_bytes_written": rep.Life.BytesWritten,
			"lifetime_index_dropped": rep.Life.IndexDropped,
			"session_hits":           rep.Session.Hits,
			"session_misses":         rep.Session.Misses,
			"session_puts":           rep.Session.Puts,
			"session_quarantines":    rep.Session.Quarantines,
			"session_evictions":      rep.Session.Evictions,
			"session_bytes_read":     rep.Session.BytesRead,
			"session_bytes_written":  rep.Session.BytesWritten,
		}
		for kind, n := range rep.ByKind {
			flat["entries_"+kind] = n
		}
		if !rep.Oldest.IsZero() {
			flat["oldest"] = rep.Oldest.Format(time.RFC3339)
			flat["newest"] = rep.Newest.Format(time.RFC3339)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(flat)
	}
	t := stats.NewTable(fmt.Sprintf("artifact store %s (%s)", rep.Dir, rep.Version), "metric", "value")
	t.AddRow("entries", rep.Entries)
	t.AddRow("bytes", int(rep.Bytes))
	var kinds []string
	//lint:ignore detrange sorted just below
	for kind := range rep.ByKind {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		t.AddRow("  "+kind, rep.ByKind[kind])
	}
	if !rep.Oldest.IsZero() {
		t.AddRow("oldest entry", rep.Oldest.Format(time.RFC3339))
		t.AddRow("newest entry", rep.Newest.Format(time.RFC3339))
	}
	t.AddRow("lifetime puts", rep.Life.Puts)
	t.AddRow("lifetime bytes written", int(rep.Life.BytesWritten))
	t.AddRow("lifetime evictions", rep.Life.Evictions)
	t.AddRow("lifetime quarantines", rep.Life.Quarantines)
	if rep.Life.IndexDropped > 0 {
		t.AddRow("index records dropped", rep.Life.IndexDropped)
	}
	fmt.Print(t)
	return nil
}

func cmdCacheVerify(args []string) error {
	fs := flag.NewFlagSet("cache verify", flag.ExitOnError)
	dirFlag := fs.String("cache-dir", "", "store directory (or CISIM_CACHE_DIR)")
	quar := fs.Bool("quarantine", false, "move failing blobs to quarantine/ (they heal on next use)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	dir, err := storeDir(*dirFlag)
	if err != nil {
		return err
	}
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		return err
	}
	defer st.Close()
	checked, bad, err := st.Verify(*quar)
	if err != nil {
		return err
	}
	if len(bad) == 0 {
		fmt.Printf("verified %d blob(s): all sound\n", checked)
		return nil
	}
	for _, b := range bad {
		fmt.Printf("corrupt: %s.%s — %s\n", b.Addr, b.Kind, b.Reason)
	}
	if *quar {
		fmt.Printf("verified %d blob(s): %d quarantined (will recompute on next use)\n", checked, len(bad))
		return nil
	}
	return fmt.Errorf("verified %d blob(s): %d corrupt (re-run with -quarantine to heal)", checked, len(bad))
}

func cmdCacheGC(args []string) error {
	fs := flag.NewFlagSet("cache gc", flag.ExitOnError)
	dirFlag := fs.String("cache-dir", "", "store directory (or CISIM_CACHE_DIR)")
	maxBytes := fs.Int64("max-bytes", 0, "evict oldest entries until the store fits this many bytes (0 = no size bound)")
	maxAge := fs.Duration("max-age", 0, "evict entries older than this (0 = no age bound)")
	dryRun := fs.Bool("dry-run", false, "report what would be evicted without touching the store")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *maxBytes <= 0 && *maxAge <= 0 {
		return fmt.Errorf("cache gc needs -max-bytes and/or -max-age")
	}
	dir, err := storeDir(*dirFlag)
	if err != nil {
		return err
	}
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		return err
	}
	defer st.Close()
	evicted, err := st.GC(*maxBytes, *maxAge, *dryRun)
	if err != nil {
		return err
	}
	verb := "evicted"
	if *dryRun {
		verb = "would evict"
	}
	var freed int64
	for _, e := range evicted {
		freed += e.Bytes
		fmt.Printf("%s %s.%s (%d bytes)\n", verb, e.Addr, e.Kind, e.Bytes)
	}
	fmt.Printf("%s %d entries, %d bytes\n", verb, len(evicted), freed)
	return nil
}
