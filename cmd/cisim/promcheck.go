package main

// cisim promcheck: validate a Prometheus text-exposition document — a
// saved scrape or a live /metrics URL — with the same strict in-repo
// parser prom_test.go round-trips through. CI's metrics-smoke job uses
// it to assert the daemon's scrape is well-formed and carries the
// expected metric families, without any external Prometheus tooling.

import (
	"flag"
	"fmt"
	"strings"

	"cisim/internal/metrics"
)

func cmdPromcheck(args []string) error {
	fs := flag.NewFlagSet("promcheck", flag.ExitOnError)
	require := fs.String("require", "", "comma-separated metric family names that must be present")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("promcheck needs one source: a saved scrape file or a /metrics URL")
	}
	src, name, err := openEventSource(fs.Arg(0))
	if err != nil {
		return err
	}
	defer src.Close()
	fams, err := metrics.ParseProm(src)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	present := map[string]bool{}
	samples := 0
	for _, f := range fams {
		present[f.Name] = true
		samples += len(f.Samples)
	}
	var missing []string
	for _, want := range strings.Split(*require, ",") {
		want = strings.TrimSpace(want)
		if want != "" && !present[want] {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: exposition parses but lacks required metric(s): %s",
			name, strings.Join(missing, ", "))
	}
	fmt.Printf("%s: %d metric families, %d samples, exposition format OK\n", name, len(fams), samples)
	return nil
}
