// Command cisim reproduces the evaluation of "A Study of Control
// Independence in Superscalar Processors" (Rotenberg, Jacobson, Smith;
// HPCA 1999).
//
// Usage:
//
//	cisim list                     list experiments and workloads
//	cisim run [flags] all          run every experiment
//	cisim run [flags] <id>         run one experiment (e.g. fig5, table2)
//
// Run flags: -quick (small inputs), -jobs N (concurrent workload jobs,
// 0 = GOMAXPROCS), -events FILE (JSONL run-event stream), -json, -plot.
// Experiment work is decomposed into (experiment, workload) jobs executed
// by a bounded worker pool over a shared content-addressed artifact
// cache; results are merged in paper order, so output is identical at
// any -jobs value. A run summary (wall clock, instructions simulated,
// cache hit rates) is printed to stderr.
//
// Resilience flags, for long full-fidelity campaigns (DESIGN.md §8):
// -timeout D bounds each job's lifetime (a stalled job is reported and
// abandoned); -retries N re-runs transiently-failed jobs with capped
// jitter-free backoff; -journal FILE appends each completed job to a
// crash-consistent fsync'd JSONL file and -resume replays it, so an
// interrupted campaign restarts where it died; SIGINT or SIGTERM drains
// in-flight jobs, prints the completed experiments with explicit holes
// for the rest, and exits non-zero. -faults SPEC (or CISIM_FAULTS) arms
// the deterministic fault-injection points (internal/faults) that make
// every one of those recovery paths testable on demand.
//
// Observability flags (DESIGN.md §9, §14): -metrics collects
// deterministic per-workload counter/histogram snapshots (in -json
// output and as `metrics` events); -spans FILE writes a deterministic-ID
// span trace of the whole run (sweep → jobs → pipeline stages →
// persistent-store traffic) that `cisim spans` analyzes offline —
// critical path, per-stage time, queue and lock waits — and exports for
// Chrome/Perfetto; -cpuprofile/-memprofile/-exectrace wrap the run in
// the Go profilers. `cisim sim -pipetrace FILE` writes a cycle-level
// pipeline trace (Konata-compatible Kanata or JSONL), and `cisim
// events` summarizes an -events or -journal file offline.
//
//	cisim sim [flags] <workload>   one detailed simulation with stats
//	cisim ideal [flags] <workload> one idealized-model simulation
//	cisim disasm <workload>        disassemble a program
//	cisim analyze <workload>       CFG and reconvergent-point report
//	cisim trace [flags] <workload> dump the annotated dynamic trace
//	cisim pipe [flags] <workload>  per-instruction pipeline timeline
//	cisim compare <old> <new>      diff two 'run -json' result files
//	cisim events <file|url>        analyze a run-event stream or journal
//
// `cisim serve` runs the same sweeps as an HTTP daemon (DESIGN.md §11):
// versioned JSON requests on a bounded queue (full -> 429 + Retry-After),
// job status and result endpoints, live event streaming (SSE or JSONL),
// and SIGTERM graceful drain. `cisim version` prints build and API
// version info. The CLI and the daemon are thin frontends over the same
// embeddable engine (internal/api), so an HTTP result is byte-identical
// to `cisim run -json` for the same request.
//
// Experiment ids follow the paper's tables and figures: table1, fig3,
// fig5, fig6, table2, table3, table4, fig8, fig9, fig10, fig12, fig13,
// fig14, fig17.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"syscall"
	"time"

	"cisim/internal/api"
	"cisim/internal/cache"
	"cisim/internal/exp"
	"cisim/internal/faults"
	"cisim/internal/ideal"
	"cisim/internal/metrics"
	"cisim/internal/ooo"
	"cisim/internal/runner"
	"cisim/internal/stats"
	"cisim/internal/telemetry"
	"cisim/internal/trace"
	"cisim/internal/workloads"
)

func main() {
	// The simulator is a short-lived batch process that allocates one
	// dyn per fetched instruction; at the default GOGC the collector
	// runs constantly against a small live set. Trade heap headroom for
	// throughput unless the user asked for something specific.
	if os.Getenv("GOGC") == "" {
		debug.SetGCPercent(600)
	}
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "sim":
		err = cmdSim(os.Args[2:])
	case "ideal":
		err = cmdIdeal(os.Args[2:])
	case "disasm":
		err = cmdDisasm(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "pipe":
		err = cmdPipe(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "events":
		err = cmdEvents(os.Args[2:])
	case "spans":
		err = cmdSpans(os.Args[2:])
	case "promcheck":
		err = cmdPromcheck(os.Args[2:])
	case "cache":
		err = cmdCache(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "version", "-version", "--version":
		err = cmdVersion()
	case "help", "-h", "--help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cisim:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cisim list                      list experiments and workloads
  cisim run [flags] all           run every experiment (-quick -jobs N -events FILE -json -plot)
  cisim run [flags] <id>          run one experiment (fig5, table2, ...)
                                  resilience: -timeout D -retries N -journal FILE -resume -faults SPEC
                                  observability: -spans FILE -metrics (DESIGN.md §14)
  cisim sim [flags] <workload>    one detailed simulation
  cisim ideal [flags] <workload>  one idealized-model simulation
  cisim disasm <workload>         disassemble a workload (-file for a source file)
  cisim analyze <workload>        CFG + reconvergent-point report
  cisim trace [flags] <workload>  dump the annotated dynamic trace
  cisim pipe [flags] <workload>   per-instruction pipeline timeline
  cisim compare <old> <new>       diff two 'run -json' result files
  cisim events <file|url>         summarize a run-event stream, journal, or serve stream (-top N)
  cisim spans <file|url>          analyze a span trace from 'run -spans FILE' or serve's /spans (-top N -chrome FILE)
  cisim promcheck <file|url>      validate a Prometheus text exposition, e.g. serve's /metrics (-require a,b,c)
  cisim cache <stats|verify|gc>   inspect or bound a persistent artifact store (-cache-dir)
  cisim check [files...]          statically verify programs (default: all workloads)
  cisim serve [flags]             HTTP sweep daemon (-addr -queue -jobs -journal-dir -cache-dir; DESIGN.md §11)
  cisim version                   print build, toolchain, and API version`)
}

func cmdList() error {
	fmt.Println("experiments:")
	for _, e := range exp.All() {
		fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		fmt.Printf("           paper: %s\n", e.Paper)
	}
	fmt.Println("\nworkloads:")
	for _, w := range workloads.All() {
		fmt.Printf("  %-10s stands in for %-8s  %s\n", w.Name, w.Paper, w.Description)
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	quick := fs.Bool("quick", false, "smaller runs (noisier, much faster)")
	plotFlag := fs.Bool("plot", false, "render figure experiments as ASCII charts too")
	jsonFlag := fs.Bool("json", false, "emit machine-readable JSON (for 'cisim compare') instead of text")
	jobs := fs.Int("jobs", 0, "concurrent (experiment, workload) jobs (0 = GOMAXPROCS; output stays in paper order)")
	fs.IntVar(jobs, "j", 0, "alias for -jobs")
	events := fs.String("events", "", "write a JSONL run-event stream (job and cache activity) to this file")
	spansPath := fs.String("spans", "", "write a deterministic-ID span trace (JSONL) to this file; analyze with 'cisim spans'")
	timeout := fs.Duration("timeout", 0, "per-job deadline (0 = none); a stalled job is reported and abandoned")
	retries := fs.Int("retries", 0, "re-run a transiently-failed job up to N times with capped backoff")
	journalPath := fs.String("journal", "", "append completed jobs to this crash-consistent JSONL file")
	resumeFlag := fs.Bool("resume", false, "replay the -journal file and run only the jobs it is missing")
	faultsSpec := fs.String("faults", "", "arm deterministic fault injection, e.g. 'cache-corrupt@2,job-transient' (see DESIGN.md §8; also CISIM_FAULTS)")
	cacheDir := fs.String("cache-dir", "", "persistent artifact store shared across runs and processes (also CISIM_CACHE_DIR; DESIGN.md §13)")
	metricsFlag := fs.Bool("metrics", false, "collect per-workload metrics snapshots (rides in -json output and -events stream)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
	memprofile := fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	exectrace := fs.String("exectrace", "", "write a Go execution trace of the run to this file (go tool trace)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := startProfiles(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		return err
	}
	defer stopProf()
	if fs.NArg() != 1 {
		return fmt.Errorf("run needs an experiment id or 'all'")
	}
	if *resumeFlag && *journalPath == "" {
		return fmt.Errorf("run -resume needs -journal FILE (the journal to replay)")
	}
	spec := *faultsSpec
	if spec == "" {
		spec = os.Getenv("CISIM_FAULTS")
	}
	if spec != "" {
		plan, err := faults.Parse(spec)
		if err != nil {
			return err
		}
		faults.Set(plan)
		defer faults.Clear()
	}
	// The persistent store (if configured) mounts behind the shared
	// artifact cache for exactly this run; results computed here are
	// written through for the next process, and vice versa.
	detachStore, err := attachStore(*cacheDir)
	if err != nil {
		return err
	}
	defer detachStore()
	// Span tracing is a side channel with the same determinism contract
	// as -events: run results are byte-identical with it on or off. The
	// trace is written even when the run fails or aborts — that is when
	// the timing evidence matters most.
	if *spansPath != "" {
		col := telemetry.NewCollector(telemetry.TraceID("cisim run", fs.Arg(0)))
		telemetry.Enable(col)
		defer func() {
			telemetry.Disable()
			if werr := writeSpans(*spansPath, col.Records()); werr != nil {
				fmt.Fprintf(os.Stderr, "cisim: spans write failed (run results are unaffected): %v\n", werr)
			}
		}()
	}
	// The flag surface maps 1:1 onto the versioned sweep request, so the
	// CLI and the HTTP daemon validate and execute identically.
	req := &api.SweepRequest{V: api.Version, Experiments: []string{fs.Arg(0)},
		Quick: *quick, Metrics: *metricsFlag, Jobs: *jobs,
		TimeoutMs: timeout.Milliseconds(), Retries: *retries}
	exps, err := exp.Resolve(req.Experiments)
	if err != nil {
		return err
	}

	var sink runner.Sink
	if *events != "" {
		f, err := os.Create(*events)
		if err != nil {
			return err
		}
		defer f.Close()
		// The engine binds the process-global cache sink itself for
		// exactly the sweep's duration (and the sinkdiscipline analyzer
		// keeps this frontend from re-binding it).
		sink = runner.NewJSONLSink(f)
	}

	// The journal replays completed jobs from a prior interrupted
	// campaign; without -resume a -journal file starts fresh.
	var jrn *runner.Journal
	journaled := map[string]json.RawMessage{}
	if *journalPath != "" {
		if !*resumeFlag {
			if err := os.Remove(*journalPath); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		j, entries, dropped, err := runner.OpenJournal(*journalPath)
		if err != nil {
			return err
		}
		defer j.Close()
		jrn = j
		if *resumeFlag {
			journaled = entries
			if dropped > 0 {
				fmt.Fprintf(os.Stderr, "cisim: journal %s: dropped %d torn/corrupt record(s); the affected jobs will recompute\n",
					*journalPath, dropped)
			}
		}
	}

	// SIGINT or SIGTERM cancels the engine's context: in-flight jobs
	// drain, the rest are skipped, and the run reports its holes and
	// exits non-zero. SIGTERM takes the identical path so process
	// managers stopping a long campaign lose nothing either.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The engine (shared with `cisim serve`) decomposes the sweep into
	// (experiment, workload) jobs, replays the journal, runs the pool,
	// and merges partials in paper order.
	out, err := api.Run(ctx, req, api.RunOptions{
		Sink: sink, Journal: jrn, Replayed: journaled,
		JournalWarn: func(jerr error) {
			fmt.Fprintf(os.Stderr, "cisim: journal write failed (run continues unjournaled): %v\n", jerr)
		}})
	if err != nil {
		return err
	}

	renderErr := renderOutcomes(exps, out.Outcomes, *jsonFlag, *plotFlag)

	fmt.Fprintf(os.Stderr, "%s", out.Summary.Table())
	if out.Aborted {
		abortErr := fmt.Errorf("run aborted before completion (re-run with -journal/-resume to pick up where it stopped)")
		if renderErr != nil {
			return fmt.Errorf("%v\n%v", renderErr, abortErr)
		}
		return abortErr
	}
	return renderErr
}

// startProfiles arms the requested Go profiling hooks and returns the
// function that stops them and writes the end-of-run artifacts. The
// hooks observe the harness process only; simulation results are
// identical with or without them.
func startProfiles(cpu, mem, exec string) (func(), error) {
	var stops []func()
	cleanup := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() { pprof.StopCPUProfile(); f.Close() })
	}
	if exec != "" {
		f, err := os.Create(exec)
		if err != nil {
			cleanup()
			return nil, err
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			cleanup()
			return nil, err
		}
		stops = append(stops, func() { rtrace.Stop(); f.Close() })
	}
	if mem != "" {
		stops = append(stops, func() {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cisim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "cisim: memprofile:", err)
			}
		})
	}
	return cleanup, nil
}

// renderOutcomes prints every healthy experiment (text or JSON) and
// returns an error aggregating every failure, so one broken experiment
// neither hides the others' output nor lets the run exit zero. Aborted
// experiments print an explicit hole in text mode and are absent from
// JSON output; the caller turns the abort itself into a non-zero exit.
func renderOutcomes(exps []*exp.Experiment, outcomes []api.Outcome, jsonMode, plotMode bool) error {
	var errs []string
	var jsonResults []exp.JSONResult
	for i, e := range exps {
		o := outcomes[i]
		if o.Err != nil {
			errs = append(errs, o.Err.Error())
			continue
		}
		if o.Aborted {
			if !jsonMode {
				fmt.Printf("%s\npaper: %s\n\n  [not run: aborted before completion]\n\n", e.Title, e.Paper)
			}
			continue
		}
		if jsonMode {
			jsonResults = append(jsonResults, exp.ToJSON(e, o.Result))
			continue
		}
		fmt.Printf("%s\npaper: %s\n\n%s", e.Title, e.Paper, o.Result)
		if plotMode {
			for _, p := range o.Result.Plots {
				fmt.Println(p.Render())
			}
		}
		fmt.Printf("(%s)\n\n", o.Elapsed.Round(time.Millisecond))
	}
	if jsonMode {
		if err := exp.WriteJSON(os.Stdout, jsonResults); err != nil {
			return err
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("%d of %d experiments failed:\n  %s",
			len(errs), len(exps), strings.Join(errs, "\n  "))
	}
	return nil
}

// cmdCompare diffs two result sets written by `cisim run -json`,
// reporting every numeric cell that moved by more than the tolerance —
// the simulator's own regression harness.
func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	tol := fs.Float64("tol", 1.0, "relative tolerance in percent")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("compare needs two result files (from 'cisim run -json all > results.json')")
	}
	load := func(path string) ([]exp.JSONResult, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return exp.ReadJSON(f)
	}
	prev, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	diffs := exp.Compare(prev, cur, *tol)
	if len(diffs) == 0 {
		fmt.Printf("no differences beyond %.1f%%\n", *tol)
		return nil
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	return fmt.Errorf("%d cells differ beyond %.1f%%", len(diffs), *tol)
}

func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	machine := fs.String("machine", "CI", "BASE, CI, or CI-I")
	window := fs.Int("window", 256, "reorder buffer entries")
	segment := fs.Int("segment", 1, "ROB segment size (1, 4, 16)")
	iters := fs.Int("iters", 0, "workload iterations (0 = default)")
	completion := fs.String("completion", "spec-C", "non-spec, spec-D, spec-C, spec")
	reconv := fs.String("reconv", "postdom", "postdom, return, loop, ltb, assoc, or combinations like return/loop/ltb")
	confDelay := fs.Bool("confidence-delay", false, "hold high-confidence branches with speculative operands (§A.2.2)")
	fetchTaken := fs.Int("fetch-taken", 0, "taken control transfers followed per fetch cycle (0 = ideal, the paper's §4.1 front end)")
	consLoads := fs.Bool("conservative-loads", false, "disable speculative memory disambiguation (loads wait for all older stores)")
	icache := fs.Bool("icache", false, "model a 64KB instruction cache (the paper assumes ideal instruction supply)")
	pipetrace := fs.String("pipetrace", "", "write a cycle-level pipeline trace of every fetched instruction to this file")
	pipeFormat := fs.String("pipetrace-format", "kanata", "pipetrace format: kanata (Konata-compatible) or jsonl")
	metricsFlag := fs.Bool("metrics", false, "collect and print deterministic counters and cycle histograms")
	cacheDir := fs.String("cache-dir", "", "persistent artifact store shared across runs and processes (also CISIM_CACHE_DIR)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("sim needs a workload name")
	}
	w, ok := workloads.Get(fs.Arg(0))
	if !ok {
		return fmt.Errorf("unknown workload %q (try 'cisim list')", fs.Arg(0))
	}
	cfg := ooo.Config{WindowSize: *window, SegmentSize: *segment, ConfidenceDelay: *confDelay,
		FetchTakenLimit: *fetchTaken, ConservativeLoads: *consLoads}
	if *icache {
		cfg.ICache = cache.DefaultDetailed()
	}
	for _, part := range strings.Split(*reconv, "/") {
		switch part {
		case "postdom":
			cfg.Reconv.PostDom = true
		case "return":
			cfg.Reconv.Return = true
		case "loop":
			cfg.Reconv.Loop = true
		case "ltb":
			cfg.Reconv.Ltb = true
		case "assoc":
			cfg.Reconv.Assoc = true
		case "":
		default:
			return fmt.Errorf("unknown reconvergence source %q", part)
		}
	}
	switch *machine {
	case "BASE":
		cfg.Machine = ooo.Base
	case "CI":
		cfg.Machine = ooo.CI
	case "CI-I":
		cfg.Machine = ooo.CIInstant
	default:
		return fmt.Errorf("unknown machine %q", *machine)
	}
	switch *completion {
	case "non-spec":
		cfg.Completion = ooo.NonSpec
	case "spec-D":
		cfg.Completion = ooo.SpecD
	case "spec-C":
		cfg.Completion = ooo.SpecC
	case "spec":
		cfg.Completion = ooo.Spec
	default:
		return fmt.Errorf("unknown completion model %q", *completion)
	}

	cfg.CollectMetrics = *metricsFlag
	var flushTrace func() error
	if *pipetrace != "" {
		f, err := os.Create(*pipetrace)
		if err != nil {
			return err
		}
		defer f.Close()
		switch *pipeFormat {
		case "kanata":
			tr := ooo.NewKanataTracer(f)
			cfg.Tracer, flushTrace = tr, tr.Flush
		case "jsonl":
			tr := ooo.NewJSONLTracer(f)
			cfg.Tracer, flushTrace = tr, tr.Flush
		default:
			return fmt.Errorf("unknown pipetrace format %q (want kanata or jsonl)", *pipeFormat)
		}
	}

	// Route through the shared artifact cache (and the persistent store
	// behind it, when configured): a sim of a config a previous run
	// already computed is served instead of re-simulated. Configs with a
	// pipetrace attached are never memoized — the tracer is a side
	// effect — but still share the cached program and prep artifacts.
	detachStore, err := attachStore(*cacheDir)
	if err != nil {
		return err
	}
	defer detachStore()
	start := time.Now()
	r, _, err := runner.Artifacts.Detailed(w, *iters, cfg)
	if err != nil {
		return err
	}
	if flushTrace != nil {
		if err := flushTrace(); err != nil {
			return fmt.Errorf("writing pipetrace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "cisim: pipetrace (%s) written to %s\n", *pipeFormat, *pipetrace)
	}
	s := &r.Stats
	t := stats.NewTable(fmt.Sprintf("%s on %s (window %d, segment %d, %s)",
		cfg.Machine, w.Name, *window, *segment, *completion), "metric", "value")
	t.AddRow("retired instructions", int(s.Retired))
	t.AddRow("cycles", int(s.Cycles))
	t.AddRow("IPC", s.IPC())
	t.AddRow("conditional branches", int(s.CondBranches))
	t.AddRow("recoveries serviced", int(s.Recoveries))
	t.AddRow("  reconverged", int(s.Reconverged))
	t.AddRow("  complete squashes", int(s.FullSquashes))
	t.AddRow("  false mispredictions", int(s.FalseMisp))
	t.AddRow("avg removed CD / restart", stats.Ratio(s.RemovedCD, s.Reconverged))
	t.AddRow("avg inserted CD / restart", stats.Ratio(s.InsertedCD, s.Reconverged))
	t.AddRow("avg CI instructions / restart", stats.Ratio(s.CIInstructions, s.Reconverged))
	t.AddRow("issues per retired instruction", s.IssuesPerRetired())
	t.AddRow("memory-order violations", int(s.MemViolations))
	t.AddRow("register rename repairs", int(s.RegViolations))
	t.AddRow("fetch saved (Table 3)", stats.Percent(100*stats.Ratio(s.FetchSaved, s.Retired)))
	t.AddRow("work saved (Table 3)", stats.Percent(100*stats.Ratio(s.WorkSaved, s.Retired)))
	t.AddRow("data cache miss rate", stats.Percent(100*stats.Ratio(s.CacheMisses, s.CacheAccesses)))
	t.AddRow("avg window occupancy", s.AvgOccupancy())
	if s.ICacheAccesses > 0 {
		t.AddRow("instruction cache miss rate", stats.Percent(100*stats.Ratio(s.ICacheMisses, s.ICacheAccesses)))
	}
	fmt.Printf("%s\n(%s)\n", t, time.Since(start).Round(time.Millisecond))
	if r.Metrics != nil {
		printMetrics(r.Metrics)
	}
	return nil
}

// printMetrics renders a metrics snapshot as counter and histogram
// tables. Snapshot slices are pre-sorted by name, so the output is
// deterministic.
func printMetrics(s *metrics.Snapshot) {
	ct := stats.NewTable("metrics: counters", "name", "value")
	for _, c := range s.Counters {
		ct.AddRow(c.Name, int(c.Value))
	}
	ht := stats.NewTable("metrics: histograms", "name", "count", "mean", "p50", "p99", "max")
	for _, h := range s.Histograms {
		ht.AddRow(h.Name, int(h.Count), h.Mean(), int(h.Quantile(0.5)), int(h.Quantile(0.99)), int(h.Max))
	}
	fmt.Printf("\n%s\n%s", ct, ht)
}

func cmdIdeal(args []string) error {
	fs := flag.NewFlagSet("ideal", flag.ExitOnError)
	model := fs.String("model", "WR-FD", "oracle, base, nWR-nFD, nWR-FD, WR-nFD, WR-FD")
	window := fs.Int("window", 256, "instruction window size")
	iters := fs.Int("iters", 0, "workload iterations (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("ideal needs a workload name")
	}
	w, ok := workloads.Get(fs.Arg(0))
	if !ok {
		return fmt.Errorf("unknown workload %q", fs.Arg(0))
	}
	var m ideal.Model
	found := false
	for _, cand := range ideal.Models() {
		if cand.String() == *model {
			m, found = cand, true
		}
	}
	if !found {
		return fmt.Errorf("unknown model %q", *model)
	}
	p, err := w.Assemble(*iters)
	if err != nil {
		return err
	}
	tr, err := trace.Generate(p, trace.Options{})
	if err != nil {
		return err
	}
	r, err := ideal.Run(tr, ideal.Config{Model: m, WindowSize: *window})
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s: window=%d retired=%d cycles=%d IPC=%.2f (mispredict rate %.2f%%)\n",
		m, w.Name, *window, r.Retired, r.Cycles, r.IPC, 100*tr.Stats.MispRate())
	return nil
}
