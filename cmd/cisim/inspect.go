package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cisim/internal/asm"
	"cisim/internal/cfg"
	"cisim/internal/isa"
	"cisim/internal/prog"
	"cisim/internal/trace"
	"cisim/internal/workloads"
)

// loadProgram resolves the positional argument of the inspection commands:
// a workload name, or an assembly source file when -file is set.
func loadProgram(file bool, arg string, iters int) (*prog.Program, error) {
	if file {
		src, err := os.ReadFile(arg)
		if err != nil {
			return nil, err
		}
		return asm.AssembleNamed(arg, string(src))
	}
	w, ok := workloads.Get(arg)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q (try 'cisim list', or -file for a source file)", arg)
	}
	return w.Assemble(iters)
}

// labelsByAddr inverts the symbol table so listings can print labels.
func labelsByAddr(p *prog.Program) map[uint64]string {
	m := make(map[uint64]string, len(p.Symbols))
	for name, addr := range p.Symbols {
		// Prefer the lexically smallest name when two labels share an
		// address, so output is deterministic.
		if old, ok := m[addr]; !ok || name < old {
			m[addr] = name
		}
	}
	return m
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	file := fs.Bool("file", false, "treat the argument as an assembly source file")
	source := fs.Bool("source", false, "emit re-assemblable assembly source instead of a listing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("disasm needs a workload name (or -file path)")
	}
	p, err := loadProgram(*file, fs.Arg(0), 0)
	if err != nil {
		return err
	}
	if *source {
		fmt.Print(asm.Format(p))
		return nil
	}
	labels := labelsByAddr(p)
	for i, in := range p.Code {
		pc := p.CodeBase + 4*uint64(i)
		if l, ok := labels[pc]; ok {
			fmt.Printf("%s:\n", l)
		}
		word, err := isa.Encode(in)
		if err != nil {
			return fmt.Errorf("encode at %#x: %w", pc, err)
		}
		line := in.String()
		if in.IsControl() && !in.IsIndirect() && in.Op != isa.RET {
			if l, ok := labels[in.BranchTarget(pc)]; ok {
				line += "   <" + l + ">"
			}
		}
		fmt.Printf("  %#08x  %08x  %s\n", pc, word, line)
	}
	fmt.Printf("%d instructions, entry %#x\n", len(p.Code), p.Entry)
	return nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	file := fs.Bool("file", false, "treat the argument as an assembly source file")
	dynamic := fs.Bool("dynamic", false, "also trace the program and report per-site misprediction and wrong-path statistics")
	iters := fs.Int("iters", 0, "workload iterations for -dynamic (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("analyze needs a workload name (or -file path)")
	}
	p, err := loadProgram(*file, fs.Arg(0), *iters)
	if err != nil {
		return err
	}
	g := cfg.Build(p)
	labels := labelsByAddr(p)
	name := func(pc uint64) string {
		if l, ok := labels[pc]; ok {
			return fmt.Sprintf("%#x <%s>", pc, l)
		}
		return fmt.Sprintf("%#x", pc)
	}

	fmt.Printf("%d instructions, %d basic blocks\n\n", len(p.Code), len(g.Order))
	fmt.Println("conditional branches (paper §4.1: reconvergent point = immediate post-dominator):")
	var branches []uint64
	for _, start := range g.Order {
		b := g.Blocks[start]
		for pc := b.Start; pc < b.End; pc += 4 {
			if in, ok := p.InstAt(pc); ok && in.IsCondBranch() {
				branches = append(branches, pc)
			}
		}
	}
	sort.Slice(branches, func(i, j int) bool { return branches[i] < branches[j] })
	noReconv := 0
	for _, pc := range branches {
		in, _ := p.InstAt(pc)
		dir := "fwd"
		if cfg.IsBackwardBranch(in) {
			dir = "back"
		}
		rpc, ok := g.ReconvergentPC(pc)
		if !ok {
			noReconv++
			fmt.Printf("  %-28s %-4s  no reconvergent point (post-dominated only by exit)\n", name(pc), dir)
			continue
		}
		// Static distance in instruction slots; a rough stand-in for the
		// paper's "control dependent region size" discussion.
		dist := int64(rpc-pc) / 4
		fmt.Printf("  %-28s %-4s  reconverges at %-24s (%+d slots)\n", name(pc), dir, name(rpc), dist)
	}
	fmt.Printf("\n%d conditional branch sites, %d without a reconvergent point\n",
		len(branches), noReconv)
	if !*dynamic {
		return nil
	}
	return analyzeDynamic(p, name)
}

// analyzeDynamic traces the program and reports, per mispredicting branch
// site, how the *dynamic* control dependent region behaves: how often the
// wrong path actually reaches the static reconvergent point, and how long
// it runs before doing so. The paper's §A.5 argument — dynamic
// reconvergent points can be much closer than immediate post-dominators —
// is directly visible in the gap between the static slot distance and the
// wrong-path lengths here.
func analyzeDynamic(p *prog.Program, name func(uint64) string) error {
	tr, err := trace.Generate(p, trace.Options{})
	if err != nil {
		return err
	}
	type site struct {
		misp, reconverged int
		wrongLen          int
	}
	sites := map[uint64]*site{}
	for i := range tr.Entries {
		e := &tr.Entries[i]
		if !e.Mispredicted || !e.Inst.IsCondBranch() {
			continue
		}
		s := sites[e.PC]
		if s == nil {
			s = &site{}
			sites[e.PC] = s
		}
		s.misp++
		if w := e.Wrong; w != nil {
			s.wrongLen += w.Len
			if w.Reconverged {
				s.reconverged++
			}
		}
	}
	var pcs []uint64
	//lint:ignore detrange sorted below with a full tie-break
	for pc := range sites {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool {
		if sites[pcs[i]].misp != sites[pcs[j]].misp {
			return sites[pcs[i]].misp > sites[pcs[j]].misp
		}
		return pcs[i] < pcs[j] // deterministic order for equal counts
	})
	fmt.Printf("\ndynamic behaviour over %d traced instructions (%.2f%% misprediction rate):\n",
		len(tr.Entries), 100*tr.Stats.MispRate())
	fmt.Printf("  %-28s %10s %12s %18s\n", "branch site", "mispredicts", "reconverge", "avg wrong-path len")
	for _, pc := range pcs {
		s := sites[pc]
		fmt.Printf("  %-28s %10d %11.0f%% %18.1f\n",
			name(pc), s.misp,
			100*float64(s.reconverged)/float64(s.misp),
			float64(s.wrongLen)/float64(s.misp))
	}
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	file := fs.Bool("file", false, "treat the argument as an assembly source file")
	n := fs.Int("n", 40, "entries to print (0 = all)")
	misp := fs.Bool("misp", false, "print only mispredicted branches")
	iters := fs.Int("iters", 0, "workload iterations (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("trace needs a workload name (or -file path)")
	}
	p, err := loadProgram(*file, fs.Arg(0), *iters)
	if err != nil {
		return err
	}
	tr, err := trace.Generate(p, trace.Options{})
	if err != nil {
		return err
	}
	printed := 0
	for i := range tr.Entries {
		e := &tr.Entries[i]
		if *misp && !e.Mispredicted {
			continue
		}
		if *n > 0 && printed >= *n {
			fmt.Printf("  ... (%d more entries)\n", len(tr.Entries)-i)
			break
		}
		printed++
		mark := " "
		if e.Mispredicted {
			mark = "!"
		} else if e.Predicted {
			mark = "p"
		}
		fmt.Printf("%7d %s %#08x  %-28s", i, mark, e.PC, e.Inst.String())
		if e.Inst.IsMem() {
			fmt.Printf("  ea=%#x", e.EA)
		}
		if e.Mispredicted {
			fmt.Printf("  mispredicted -> %#x", e.PredTarget)
			if w := e.Wrong; w != nil {
				if w.Reconverged {
					fmt.Printf(" (wrong path %d instrs, reconverges at %#x)", w.Len, w.ReconvPC)
				} else {
					fmt.Printf(" (wrong path %d instrs, no reconvergence)", w.Len)
				}
			}
		}
		fmt.Println()
	}
	fmt.Printf("%d entries total, misprediction rate %.2f%% (halted=%v)\n",
		len(tr.Entries), 100*tr.Stats.MispRate(), tr.Halted)
	return nil
}
