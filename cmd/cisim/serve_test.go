package main

// Frontend-parity and signal tests: the HTTP daemon and the CLI must
// produce byte-identical results for the same request, SIGTERM must
// drain a run exactly like SIGINT, `cisim version` must identify the
// build, and `cisim events` must accept a URL where it accepts a file.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"cisim/internal/api"
	"cisim/internal/runner"
	"cisim/internal/serve"
)

// contextWithTimeout bounds a daemon drain so a broken shutdown fails
// the test instead of hanging it.
func contextWithTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 60*time.Second)
}

// TestServeResultMatchesRunJSON: the acceptance criterion for the serve
// subsystem — an HTTP sweep result is byte-identical to `cisim run
// -quick -json` for the same request, because both frontends are thin
// wrappers over internal/api.
func TestServeResultMatchesRunJSON(t *testing.T) {
	want, err := runQuiet(t, "-quick", "-json", "table1")
	if err != nil {
		t.Fatal(err)
	}

	srv := serve.New(serve.Config{})
	ts := httptest.NewServer(srv)
	defer func() {
		ctx, cancel := contextWithTimeout(t)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	}()

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"v":1,"experiments":["table1"],"quick":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var info api.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		sresp, err := http.Get(ts.URL + "/v1/sweeps/" + info.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur api.JobInfo
		if err := json.NewDecoder(sresp.Body).Decode(&cur); err != nil {
			t.Fatal(err)
		}
		sresp.Body.Close()
		if cur.Status == api.StatusDone {
			break
		}
		if cur.Status.Terminal() {
			t.Fatalf("sweep ended %s: %s", cur.Status, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in %s", cur.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}

	rresp, err := http.Get(ts.URL + "/v1/sweeps/" + info.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", rresp.StatusCode, got)
	}
	if string(got) != want {
		t.Errorf("HTTP result differs from `run -quick -json` (%d vs %d bytes)", len(got), len(want))
	}
}

// TestRunSIGTERMDrain: SIGTERM takes the SIGINT graceful-drain path —
// the run aborts with explicit holes, skipped jobs are evented, and the
// journal survives intact for -resume.
func TestRunSIGTERMDrain(t *testing.T) {
	// Catch SIGTERM for the whole test binary before any is sent, so a
	// signal racing cmdRun's own registration cannot kill the process.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	dir := t.TempDir()
	events := dir + "/events.jsonl"
	journal := dir + "/run.journal"

	errc := make(chan error, 1)
	go func() {
		// job-hang parks the first picked-up job until the signal
		// cancels the run context, holding the run open deterministically.
		_, err := runQuiet(t, "-quick", "-faults", "job-hang",
			"-events", events, "-journal", journal, "table1")
		errc <- err
	}()

	// The run_start event is emitted strictly after cmdRun registered
	// its signal handler, so once it appears the SIGTERM is safe.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(events); err == nil && strings.Contains(string(data), `"run_start"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never emitted run_start")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-errc:
		if err == nil || !strings.Contains(err.Error(), "run aborted before completion") {
			t.Fatalf("SIGTERM'd run returned %v, want the abort error", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("SIGTERM did not drain the run")
	}

	counts := countEvents(t, events)
	if counts["run_abort"] == 0 {
		t.Errorf("no run_abort event after SIGTERM: %v", counts)
	}
	if counts["run_end"] != 1 {
		t.Errorf("drained run did not finish its event stream: %v", counts)
	}

	// The journal a drain leaves behind replays cleanly.
	j, _, dropped, err := runner.OpenJournal(journal)
	if err != nil {
		t.Fatalf("reopening journal after SIGTERM: %v", err)
	}
	j.Close()
	if dropped != 0 {
		t.Errorf("SIGTERM tore %d journal record(s)", dropped)
	}
}

// TestCmdVersion: the version subcommand names the module, toolchain,
// and API version.
func TestCmdVersion(t *testing.T) {
	out, err := capture(t, cmdVersion)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cisim", "go1", "api=v1"} {
		if !strings.Contains(out, want) {
			t.Errorf("version output %q missing %q", strings.TrimSpace(out), want)
		}
	}
}

// TestCmdEventsURL: `cisim events` analyzes an HTTP source — such as a
// serve daemon's event endpoint — exactly like a local file.
func TestCmdEventsURL(t *testing.T) {
	f := t.TempDir() + "/events.jsonl"
	if _, err := runQuiet(t, "-quick", "-events", f, "table1"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweeps/s000001/events" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = w.Write(data)
	}))
	defer ts.Close()

	out, err := capture(t, func() error {
		return cmdEvents([]string{ts.URL + "/v1/sweeps/s000001/events"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"run overview", "jobs completed"} {
		if !strings.Contains(out, want) {
			t.Errorf("events-over-HTTP output missing %q", want)
		}
	}

	if _, err := capture(t, func() error {
		return cmdEvents([]string{ts.URL + "/no/such/stream"})
	}); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("missing URL source: err = %v, want a 404 mention", err)
	}
}
