package main

import (
	"os"
	"strings"
	"testing"
)

const sampleExposition = `# HELP cisim_queue_depth Sweeps waiting in the queue.
# TYPE cisim_queue_depth gauge
cisim_queue_depth 0
# TYPE cisim_sweeps_total counter
cisim_sweeps_total{status="done"} 3
# TYPE cisim_sweep_duration_seconds histogram
cisim_sweep_duration_seconds_bucket{le="1"} 2
cisim_sweep_duration_seconds_bucket{le="+Inf"} 3
cisim_sweep_duration_seconds_sum 4.5
cisim_sweep_duration_seconds_count 3
`

func TestCmdPromcheck(t *testing.T) {
	f := t.TempDir() + "/metrics.txt"
	if err := os.WriteFile(f, []byte(sampleExposition), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return cmdPromcheck([]string{"-require", "cisim_queue_depth, cisim_sweeps_total,cisim_sweep_duration_seconds", f})
	})
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if !strings.Contains(out, "exposition format OK") {
		t.Errorf("promcheck output: %q", out)
	}

	_, err = capture(t, func() error {
		return cmdPromcheck([]string{"-require", "cisim_queue_depth,cisim_no_such_metric", f})
	})
	if err == nil || !strings.Contains(err.Error(), "cisim_no_such_metric") {
		t.Errorf("missing required metric not reported: %v", err)
	}
}

func TestCmdPromcheckRejectsMalformed(t *testing.T) {
	f := t.TempDir() + "/bad.txt"
	// Sample before its TYPE declaration — the strict parser refuses.
	if err := os.WriteFile(f, []byte("cisim_queue_depth 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error { return cmdPromcheck([]string{f}) }); err == nil {
		t.Error("undeclared sample should fail promcheck")
	}
}
