// Command benchdiff compares `go test -bench` output against a committed
// baseline, in the spirit of benchstat (which, like everything else under
// x/perf, is unavailable offline). It reads benchmark output on stdin,
// takes the median over repeated runs (-count=N), and either records the
// result as a new baseline (-write) or prints a comparison table against
// an existing one.
//
//	go test -bench=. -count=3 . | benchdiff -write BENCH_5.json
//	go test -bench=. -count=3 . | benchdiff -baseline BENCH_5.json
//
// The comparison is advisory by default: deltas beyond the threshold are
// flagged loudly but the exit status stays 0, because these are wall-clock
// measurements on shared CI machines and a hard gate on ±10% noise would
// train everyone to ignore it. -strict turns time regressions beyond the
// threshold into exit status 1. Alloc counts are deterministic, so -strict
// also fails on any allocs/op increase at all.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark record (BENCH_5.json).
type Baseline struct {
	// Note documents the machine and toolchain the baseline was taken on;
	// comparisons on other machines are indicative, not precise.
	Note       string               `json:"note,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// Benchmark is the median of one benchmark's runs.
type Benchmark struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// sample accumulates repeated runs of one benchmark.
type sample struct {
	ns, bytes, allocs []float64
}

func main() {
	var (
		write     = flag.String("write", "", "record medians as a new baseline at this path")
		baseline  = flag.String("baseline", "", "compare against the baseline at this path")
		note      = flag.String("note", "", "with -write: provenance note (machine, toolchain)")
		threshold = flag.Float64("threshold", 10, "advisory time-delta threshold in percent")
		strict    = flag.Bool("strict", false, "exit 1 on time regressions beyond the threshold or any allocs/op increase")
	)
	flag.Parse()
	if (*write == "") == (*baseline == "") {
		fmt.Fprintln(os.Stderr, "benchdiff: exactly one of -write or -baseline is required")
		os.Exit(2)
	}

	samples, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no benchmark results on stdin")
		os.Exit(2)
	}
	cur := medians(samples)

	if *write != "" {
		out := Baseline{Note: *note, Benchmarks: cur}
		buf, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*write, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(cur), *write)
		return
	}

	buf, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	if base.Note != "" {
		fmt.Printf("baseline: %s\n\n", base.Note)
	}
	failed := compare(os.Stdout, base.Benchmarks, cur, *threshold)
	if failed && *strict {
		os.Exit(1)
	}
}

// parseBench reads `go test -bench` output, collecting every run of every
// benchmark. Lines look like
//
//	BenchmarkFoo/sub-8   3   123456 ns/op   9876 B/op   12 allocs/op
//
// possibly with extra ReportMetric pairs, which are ignored.
func parseBench(r io.Reader) (map[string]*sample, error) {
	out := map[string]*sample{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := trimProcs(f[0])
		s := out[name]
		if s == nil {
			s = &sample{}
			out[name] = s
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				s.ns = append(s.ns, v)
			case "B/op":
				s.bytes = append(s.bytes, v)
			case "allocs/op":
				s.allocs = append(s.allocs, v)
			}
		}
	}
	return out, sc.Err()
}

// trimProcs strips the trailing -GOMAXPROCS from a benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func medians(samples map[string]*sample) map[string]Benchmark {
	out := make(map[string]Benchmark, len(samples))
	for name, s := range samples {
		if len(s.ns) == 0 {
			continue
		}
		out[name] = Benchmark{
			NsPerOp:     median(s.ns),
			BytesPerOp:  median(s.bytes),
			AllocsPerOp: median(s.allocs),
		}
	}
	return out
}

// median returns the middle value (mean of the middle two for even
// counts), or 0 for an empty sample.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// compare prints the benchstat-style table — time, bytes, and allocation
// columns with per-benchmark deltas, then the geomean of the time ratios
// over every benchmark present on both sides — and reports whether any
// benchmark regressed (time beyond the threshold, or allocs at all).
func compare(w io.Writer, base, cur map[string]Benchmark, threshold float64) bool {
	names := make([]string, 0, len(cur))
	//lint:ignore detrange keys are sorted immediately below
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	fmt.Fprintf(w, "%-48s %12s %12s %9s %11s %11s %9s %9s %9s %9s\n",
		"benchmark", "old time/op", "new time/op", "delta",
		"old B/op", "new B/op", "delta",
		"old allocs", "new allocs", "delta")
	var logSum float64
	var ratios int
	for _, name := range names {
		c := cur[name]
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "%-48s %12s %12s %9s %11s %11s %9s %9s %9s %9s\n",
				name, "-", fmtNs(c.NsPerOp), "new",
				"-", fmtBytes(c.BytesPerOp), "new",
				"-", fmtCount(c.AllocsPerOp), "new")
			continue
		}
		td := pctDelta(b.NsPerOp, c.NsPerOp)
		bd := pctDelta(b.BytesPerOp, c.BytesPerOp)
		ad := pctDelta(b.AllocsPerOp, c.AllocsPerOp)
		if b.NsPerOp > 0 && c.NsPerOp > 0 {
			logSum += math.Log(c.NsPerOp / b.NsPerOp)
			ratios++
		}
		mark := ""
		if td > threshold {
			mark = "  !! time regression beyond advisory threshold"
			failed = true
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			mark += "  !! allocs/op increased"
			failed = true
		}
		fmt.Fprintf(w, "%-48s %12s %12s %+8.1f%% %11s %11s %+8.1f%% %9s %9s %+8.1f%%%s\n",
			name, fmtNs(b.NsPerOp), fmtNs(c.NsPerOp), td,
			fmtBytes(b.BytesPerOp), fmtBytes(c.BytesPerOp), bd,
			fmtCount(b.AllocsPerOp), fmtCount(c.AllocsPerOp), ad, mark)
	}
	var missing []string
	//lint:ignore detrange keys are sorted immediately below
	for name := range base {
		if _, ok := cur[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(w, "%-48s   (in baseline, not measured)\n", name)
	}
	if ratios > 0 {
		g := math.Exp(logSum / float64(ratios))
		fmt.Fprintf(w, "\ngeomean time ratio: %.3fx (%+.1f%%) over %d benchmarks\n",
			g, (g-1)*100, ratios)
	}
	return failed
}

func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func fmtBytes(n float64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fGB", n/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fMB", n/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fkB", n/1e3)
	default:
		return fmt.Sprintf("%.0fB", n)
	}
}

func fmtCount(n float64) string {
	switch {
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", n/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fk", n/1e3)
	default:
		return fmt.Sprintf("%.0f", n)
	}
}
