package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: cisim
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkRunAllQuick/cold-8         	       1	7000000000 ns/op	3000000000 B/op	19000000 allocs/op
BenchmarkRunAllQuick/cold-8         	       1	9000000000 ns/op	3100000000 B/op	19000000 allocs/op
BenchmarkRunAllQuick/cold-8         	       1	8000000000 ns/op	3200000000 B/op	19000000 allocs/op
BenchmarkTraceGeneration-8          	      10	 120000000 ns/op	    240000 instrs/op	 90000000 B/op	 500000 allocs/op
BenchmarkTraceGeneration-8          	      10	 100000000 ns/op	    240000 instrs/op	 90000000 B/op	 500000 allocs/op
PASS
ok  	cisim	42.0s
`

func TestParseBenchMedians(t *testing.T) {
	samples, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	got := medians(samples)

	cold, ok := got["BenchmarkRunAllQuick/cold"]
	if !ok {
		t.Fatalf("missing cold benchmark; have %v", got)
	}
	if cold.NsPerOp != 8e9 {
		t.Errorf("cold median ns/op = %g, want 8e9", cold.NsPerOp)
	}
	if cold.AllocsPerOp != 19e6 {
		t.Errorf("cold allocs/op = %g, want 19e6", cold.AllocsPerOp)
	}

	// Even run count: mean of the middle two. The instrs/op ReportMetric
	// pair must not confuse the parser.
	tg, ok := got["BenchmarkTraceGeneration"]
	if !ok {
		t.Fatalf("missing trace benchmark; have %v", got)
	}
	if tg.NsPerOp != 110e6 {
		t.Errorf("trace median ns/op = %g, want 110e6", tg.NsPerOp)
	}
	if tg.BytesPerOp != 90e6 {
		t.Errorf("trace B/op = %g, want 90e6", tg.BytesPerOp)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := map[string]Benchmark{
		"BenchmarkA":    {NsPerOp: 100, AllocsPerOp: 10},
		"BenchmarkB":    {NsPerOp: 100, AllocsPerOp: 10},
		"BenchmarkC":    {NsPerOp: 100, AllocsPerOp: 10},
		"BenchmarkGone": {NsPerOp: 1},
	}
	cur := map[string]Benchmark{
		"BenchmarkA":   {NsPerOp: 105, AllocsPerOp: 10}, // within threshold
		"BenchmarkB":   {NsPerOp: 150, AllocsPerOp: 10}, // time regression
		"BenchmarkC":   {NsPerOp: 90, AllocsPerOp: 11},  // alloc regression
		"BenchmarkNew": {NsPerOp: 5},
	}

	var sb strings.Builder
	if !compare(&sb, base, cur, 10) {
		t.Error("compare should report a regression")
	}
	out := sb.String()
	if !strings.Contains(out, "time regression") {
		t.Errorf("missing time regression flag:\n%s", out)
	}
	if !strings.Contains(out, "allocs/op increased") {
		t.Errorf("missing alloc regression flag:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkNew") || !strings.Contains(out, "BenchmarkGone") {
		t.Errorf("new/vanished benchmarks not reported:\n%s", out)
	}

	var ok strings.Builder
	if compare(&ok, base, map[string]Benchmark{"BenchmarkA": {NsPerOp: 104, AllocsPerOp: 10}}, 10) {
		t.Errorf("within-threshold delta flagged as regression:\n%s", ok.String())
	}
}

// TestCompareGeomeanAndBytes pins the summary line and the bytes/op
// columns: two benchmarks at 0.5x and 2.0x must geomean to exactly 1.0x,
// and the byte columns must show both sides with their delta.
func TestCompareGeomeanAndBytes(t *testing.T) {
	base := map[string]Benchmark{
		"BenchmarkHalf":   {NsPerOp: 100, BytesPerOp: 4096, AllocsPerOp: 10},
		"BenchmarkDouble": {NsPerOp: 100, BytesPerOp: 2e6, AllocsPerOp: 10},
	}
	cur := map[string]Benchmark{
		"BenchmarkHalf":   {NsPerOp: 50, BytesPerOp: 2048, AllocsPerOp: 10},
		"BenchmarkDouble": {NsPerOp: 200, BytesPerOp: 2e6, AllocsPerOp: 10},
	}
	var sb strings.Builder
	compare(&sb, base, cur, 1e9) // threshold high: only the summary matters
	out := sb.String()
	if !strings.Contains(out, "geomean time ratio: 1.000x") {
		t.Errorf("missing or wrong geomean line:\n%s", out)
	}
	if !strings.Contains(out, "over 2 benchmarks") {
		t.Errorf("geomean should count both benchmarks:\n%s", out)
	}
	if !strings.Contains(out, "4.1kB") || !strings.Contains(out, "2.0kB") {
		t.Errorf("bytes/op columns missing:\n%s", out)
	}
	if !strings.Contains(out, "-50.0%") {
		t.Errorf("bytes delta missing:\n%s", out)
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo/sub-16":   "BenchmarkFoo/sub",
		"BenchmarkFoo/BASE-2":   "BenchmarkFoo/BASE",
		"BenchmarkNoSuffix":     "BenchmarkNoSuffix",
		"BenchmarkFoo/w-64-8":   "BenchmarkFoo/w-64",
		"BenchmarkFoo/not-anum": "BenchmarkFoo/not-anum",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
