// cisimlint runs the repository's custom static analyzers (package
// internal/lint) over Go packages and reports findings in the usual
// file:line:col format. It exits 1 when any diagnostic survives
// suppression, 2 on a loading failure.
//
// Usage:
//
//	cisimlint [-C dir] [-list] [-json] [packages]
//
// With no package patterns it lints the whole enclosing module (./...),
// so `cisimlint` from anywhere inside the repo checks everything.
// -json emits one JSON object per diagnostic line ({"file", "line",
// "col", "analyzer", "message"}) for machine consumption — CI uploads
// that stream as an artifact when the lint gate fails.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cisim/internal/lint"
)

func main() {
	fs := flag.NewFlagSet("cisimlint", flag.ExitOnError)
	dir := fs.String("C", "", "module directory to lint (default: the enclosing module)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON lines instead of file:line:col text")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cisimlint [-C dir] [-list] [-json] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs the cisim repository analyzers over the given package patterns\n")
		fmt.Fprintf(fs.Output(), "(default ./... relative to the enclosing module).\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := lint.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cisimlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			_ = enc.Encode(jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// jsonDiag is the -json line shape; a stable, flat record so CI
// artifacts and editor integrations can parse findings without
// knowing the analyzers.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}
