// cisimlint runs the repository's custom static analyzers (package
// internal/lint) over Go packages and reports findings in the usual
// file:line:col format. It exits 1 when any diagnostic survives
// suppression, 2 on a loading failure.
//
// Usage:
//
//	cisimlint [-C dir] [-list] [packages]
//
// With no package patterns it lints the whole enclosing module (./...),
// so `cisimlint` from anywhere inside the repo checks everything.
package main

import (
	"flag"
	"fmt"
	"os"

	"cisim/internal/lint"
)

func main() {
	fs := flag.NewFlagSet("cisimlint", flag.ExitOnError)
	dir := fs.String("C", "", "module directory to lint (default: the enclosing module)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: cisimlint [-C dir] [-list] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs the cisim repository analyzers over the given package patterns\n")
		fmt.Fprintf(fs.Output(), "(default ./... relative to the enclosing module).\n\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := lint.Load(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cisimlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.Analyzers())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
