package cisim

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation, regenerating the corresponding rows at reduced
// (quick) scale so `go test -bench=. -benchmem` sweeps the whole
// reproduction. Full-scale outputs come from `go run ./cmd/cisim run all`
// and are recorded in EXPERIMENTS.md.
//
// Additional micro-benchmarks cover the simulator substrates (trace
// generation, the idealized scheduler, the detailed machine) and the
// ablation axes DESIGN.md calls out (window size, segment size,
// completion model).

import (
	"fmt"
	"testing"

	"cisim/internal/cache"
	"cisim/internal/exp"
	"cisim/internal/ideal"
	"cisim/internal/ooo"
	"cisim/internal/runner"
	"cisim/internal/trace"
	"cisim/internal/workloads"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := e.Run(exp.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Tables) == 0 {
			b.Fatal("no output")
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }

// BenchmarkRunAllQuick sweeps every experiment at quick scale under the
// two artifact-cache regimes: cold resets the shared cache before each
// sweep (the cost of a fresh `cisim run all` process), warm reuses it (a
// repeated in-process sweep, where every artifact is memoized). The
// cold/warm ratio is the harness overhead the cache cannot remove;
// EXPERIMENTS.md records the measured numbers.
func BenchmarkRunAllQuick(b *testing.B) {
	sweep := func(b *testing.B) {
		b.Helper()
		for _, e := range exp.All() {
			r, err := e.Run(exp.Options{Quick: true})
			if err != nil {
				b.Fatal(err)
			}
			if len(r.Tables) == 0 {
				b.Fatal("no output")
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runner.Artifacts.Reset()
			sweep(b)
		}
	})
	b.Run("warm", func(b *testing.B) {
		runner.Artifacts.Reset()
		sweep(b) // prime the cache outside the timed region
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(b)
		}
	})
}

// --- substrate micro-benchmarks ---

// BenchmarkTraceGeneration measures annotated trace production (emulation
// + prediction + wrong-path expansion), reported per dynamic instruction.
func BenchmarkTraceGeneration(b *testing.B) {
	w, _ := workloads.Get("xgo")
	p := w.Program(1000)
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		tr, err := trace.Generate(p, trace.Options{})
		if err != nil {
			b.Fatal(err)
		}
		n = len(tr.Entries)
	}
	b.ReportMetric(float64(n), "instrs/op")
}

// BenchmarkTraceGenerationBatched pins the block-granular generator on a
// branchier workload at larger scale than BenchmarkTraceGeneration: the
// batched decode+execute runs and the chunked entry accumulation are the
// whole cost here, so a regression in either shows up before it is
// diluted by the experiment harness.
func BenchmarkTraceGenerationBatched(b *testing.B) {
	w, _ := workloads.Get("xgcc")
	p := w.Program(2000)
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		tr, err := trace.Generate(p, trace.Options{})
		if err != nil {
			b.Fatal(err)
		}
		n = len(tr.Entries)
	}
	b.ReportMetric(float64(n), "instrs/op")
}

// BenchmarkIdealScheduler measures the Section 2 window scheduler.
func BenchmarkIdealScheduler(b *testing.B) {
	w, _ := workloads.Get("xgo")
	tr, err := trace.Generate(w.Program(1000), trace.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ideal.Run(tr, ideal.Config{Model: ideal.WRFD, WindowSize: 256}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Entries)), "instrs/op")
}

// BenchmarkDetailedMachine measures the execution-driven simulator across
// machines (the per-simulated-instruction cost of BASE vs CI).
func BenchmarkDetailedMachine(b *testing.B) {
	w, _ := workloads.Get("xgo")
	p := w.Program(1000)
	for _, mach := range []ooo.Machine{ooo.Base, ooo.CI} {
		b.Run(mach.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ooo.Run(p, ooo.Config{Machine: mach, WindowSize: 256}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationWindow sweeps the window size on the CI machine.
func BenchmarkAblationWindow(b *testing.B) {
	w, _ := workloads.Get("xgo")
	p := w.Program(800)
	for _, win := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("win%d", win), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := ooo.Run(p, ooo.Config{Machine: ooo.CI, WindowSize: win})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Stats.IPC(), "IPC")
			}
		})
	}
}

// BenchmarkAblationSegment sweeps ROB segment granularity (§A.4).
func BenchmarkAblationSegment(b *testing.B) {
	w, _ := workloads.Get("xgcc")
	p := w.Program(800)
	for _, seg := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("seg%d", seg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := ooo.Run(p, ooo.Config{Machine: ooo.CI, WindowSize: 256, SegmentSize: seg})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Stats.IPC(), "IPC")
			}
		})
	}
}

// BenchmarkAblationCompletion sweeps the branch completion models (§A.2).
func BenchmarkAblationCompletion(b *testing.B) {
	w, _ := workloads.Get("xcompress")
	p := w.Program(800)
	for _, cm := range []ooo.Completion{ooo.NonSpec, ooo.SpecD, ooo.SpecC, ooo.Spec} {
		b.Run(cm.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := ooo.Run(p, ooo.Config{Machine: ooo.CI, WindowSize: 256, Completion: cm})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Stats.IPC(), "IPC")
			}
		})
	}
}

// BenchmarkAblationPredictor compares gshare against the history-free
// bimodal predictor on the CI machine (§A.3's framing).
func BenchmarkAblationPredictor(b *testing.B) {
	w, _ := workloads.Get("xgo")
	p := w.Program(800)
	for _, bim := range []bool{false, true} {
		name := "gshare"
		if bim {
			name = "bimodal"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := ooo.Run(p, ooo.Config{Machine: ooo.CI, WindowSize: 256, BimodalPredictor: bim})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Stats.IPC(), "IPC")
			}
		})
	}
}

// BenchmarkAblationReconv compares reconvergence sources on the CI
// machine: exact post-dominators, the §A.5.2 instruction-type heuristics,
// and the §A.5.1 associative search.
func BenchmarkAblationReconv(b *testing.B) {
	w, _ := workloads.Get("xgcc")
	p := w.Program(800)
	cases := []struct {
		name string
		rc   ooo.Reconv
	}{
		{"postdom", ooo.Reconv{PostDom: true}},
		{"heuristics", ooo.Reconv{Return: true, Loop: true, Ltb: true}},
		{"assoc", ooo.Reconv{Assoc: true}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := ooo.Run(p, ooo.Config{Machine: ooo.CI, WindowSize: 256, Reconv: c.rc})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Stats.IPC(), "IPC")
			}
		})
	}
}

// BenchmarkAblationFetchTaken ablates the ideal-fetch assumption of §4.1:
// unlimited taken transfers per cycle (the paper's configuration) versus a
// front end that follows one or two.
func BenchmarkAblationFetchTaken(b *testing.B) {
	w, _ := workloads.Get("xgo")
	p := w.Program(800)
	for _, lim := range []int{0, 2, 1} {
		name := "ideal"
		if lim > 0 {
			name = fmt.Sprintf("taken%d", lim)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := ooo.Run(p, ooo.Config{Machine: ooo.CI, WindowSize: 256, FetchTakenLimit: lim})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Stats.IPC(), "IPC")
			}
		})
	}
}

// BenchmarkAblationDisambiguation ablates speculative memory
// disambiguation (Table 4's subject): loads issuing past unresolved
// stores with violation recovery, versus conservatively waiting for every
// older store to complete.
func BenchmarkAblationDisambiguation(b *testing.B) {
	w, _ := workloads.Get("xcompress")
	p := w.Program(800)
	for _, cons := range []bool{false, true} {
		name := "speculative"
		if cons {
			name = "conservative"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := ooo.Run(p, ooo.Config{Machine: ooo.CI, WindowSize: 256, ConservativeLoads: cons})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Stats.IPC(), "IPC")
				b.ReportMetric(float64(r.Stats.MemViolations), "violations")
			}
		})
	}
}

// BenchmarkAblationICache ablates the paper's ideal instruction supply
// with the §4.1 cache geometry applied to fetch.
func BenchmarkAblationICache(b *testing.B) {
	w, _ := workloads.Get("xgcc")
	p := w.Program(800)
	for _, ic := range []bool{false, true} {
		name := "ideal"
		cfg := ooo.Config{Machine: ooo.CI, WindowSize: 256}
		if ic {
			name = "icache"
			cfg.ICache = cache.DefaultDetailed()
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := ooo.Run(p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.Stats.IPC(), "IPC")
			}
		})
	}
}
