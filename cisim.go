// Package cisim is a from-scratch reproduction of "A Study of Control
// Independence in Superscalar Processors" (Eric Rotenberg, Quinn Jacobson,
// Jim Smith; HPCA 1999): the idealized six-model study of the paper's
// Section 2, the detailed execution-driven superscalar simulator of
// Section 4 and Appendix A, and every substrate they depend on — a small
// RISC ISA with an assembler and functional emulator, gshare/CTB/RAS
// branch prediction, post-dominator control-flow analysis, a data cache,
// and five synthetic stand-ins for the SPEC95 integer workloads.
//
// This package is the public facade. Three entry points cover most uses:
//
//	p := cisim.MustWorkload("xgo").Program(0)   // assemble a workload
//	r, _ := cisim.RunDetailed(p, cisim.DetailedConfig{
//	    Machine: cisim.MachineCI, WindowSize: 256,
//	})
//	fmt.Println(r.Stats.IPC())
//
// Custom programs can be assembled from source with Assemble, traced with
// GenerateTrace, and run through the idealized models with RunIdeal.
// RunExperiment regenerates the paper's tables and figures by id
// ("table1", "fig3", "fig5", ..., "fig17").
package cisim

import (
	"fmt"

	"cisim/internal/asm"
	"cisim/internal/exp"
	"cisim/internal/ideal"
	"cisim/internal/ooo"
	"cisim/internal/prog"
	"cisim/internal/trace"
	"cisim/internal/workloads"
)

// Program is an assembled program image.
type Program = prog.Program

// Workload is one of the five synthetic SPEC95 stand-ins.
type Workload = workloads.Workload

// Trace is an annotated dynamic instruction trace (input to RunIdeal).
type Trace = trace.Trace

// IdealModel selects one of the Section 2 machine models.
type IdealModel = ideal.Model

// Idealized machine models (Figure 3).
const (
	ModelOracle = ideal.Oracle
	ModelBase   = ideal.Base
	ModelNWRnFD = ideal.NWRnFD
	ModelNWRFD  = ideal.NWRFD
	ModelWRnFD  = ideal.WRnFD
	ModelWRFD   = ideal.WRFD
)

// IdealConfig parameterizes an idealized-model run.
type IdealConfig = ideal.Config

// IdealResult is an idealized-model run's outcome.
type IdealResult = ideal.Result

// Machine selects the detailed simulator's processor model (Figure 5).
type Machine = ooo.Machine

// Detailed machines.
const (
	MachineBase = ooo.Base
	MachineCI   = ooo.CI
	MachineCII  = ooo.CIInstant
)

// DetailedConfig parameterizes a detailed execution-driven simulation;
// see the ooo package's Config for every knob (completion models,
// preemption and re-prediction policies, segment sizes, reconvergence
// heuristics).
type DetailedConfig = ooo.Config

// DetailedResult is a detailed simulation's outcome.
type DetailedResult = ooo.Result

// PipeRecord is one retired instruction's pipeline timing, recorded when
// DetailedConfig.RecordPipeline is set.
type PipeRecord = ooo.PipeRecord

// RenderPipeline draws pipeline records as an ASCII timeline (F fetch,
// I last issue, C complete, R retire), one row per retired instruction.
func RenderPipeline(recs []PipeRecord, width int) string {
	return ooo.RenderPipeline(recs, width)
}

// Workloads returns the five synthetic benchmarks in Table 1 order.
func Workloads() []*Workload { return workloads.All() }

// GetWorkload returns a workload by name ("xgcc", "xgo", "xcompress",
// "xjpeg", "xvortex").
func GetWorkload(name string) (*Workload, bool) { return workloads.Get(name) }

// MustWorkload is GetWorkload, panicking on unknown names.
func MustWorkload(name string) *Workload {
	w, ok := workloads.Get(name)
	if !ok {
		panic(fmt.Sprintf("cisim: unknown workload %q", name))
	}
	return w
}

// Assemble builds a program from assembly source (see the asm package's
// documentation for the syntax).
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// GenerateTrace produces the annotated dynamic trace of a program: the
// correct-path stream with branch predictions, wrong-path summaries, and
// data-dependence producer indices.
func GenerateTrace(p *Program, maxInstrs uint64) (*Trace, error) {
	return trace.Generate(p, trace.Options{MaxInstrs: maxInstrs})
}

// RunIdeal runs a trace through one of the Section 2 idealized models.
func RunIdeal(t *Trace, cfg IdealConfig) (IdealResult, error) {
	return ideal.Run(t, cfg)
}

// RunDetailed runs a program through the Section 4 detailed simulator.
// Every retired instruction is validated against a functional-emulator
// golden stream; a validation failure panics, indicating a simulator bug.
func RunDetailed(p *Program, cfg DetailedConfig) (*DetailedResult, error) {
	return ooo.Run(p, cfg)
}

// ExperimentIDs lists the reproducible paper artifacts in paper order.
func ExperimentIDs() []string { return exp.IDs() }

// RunExperiment regenerates one paper table or figure. Quick mode shrinks
// the workloads for fast, noisier runs.
func RunExperiment(id string, quick bool) (string, error) {
	e, ok := exp.Get(id)
	if !ok {
		return "", fmt.Errorf("cisim: unknown experiment %q", id)
	}
	r, err := e.Run(exp.Options{Quick: quick})
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
