package cisim

import (
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	p := MustWorkload("xgo").Program(60)
	r, err := RunDetailed(p, DetailedConfig{Machine: MachineCI, WindowSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.IPC() <= 0 {
		t.Fatalf("IPC = %f", r.Stats.IPC())
	}
}

func TestFacadeIdeal(t *testing.T) {
	p := MustWorkload("xvortex").Program(60)
	tr, err := GenerateTrace(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	or, err := RunIdeal(tr, IdealConfig{Model: ModelOracle, WindowSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	ba, err := RunIdeal(tr, IdealConfig{Model: ModelBase, WindowSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if or.IPC < ba.IPC {
		t.Errorf("oracle (%f) below base (%f)", or.IPC, ba.IPC)
	}
}

func TestFacadeAssemble(t *testing.T) {
	p, err := Assemble("main:\n li r1, 7\n halt\n")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunDetailed(p, DetailedConfig{Machine: MachineBase, WindowSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Retired != 2 {
		t.Errorf("retired %d, want 2", r.Stats.Retired)
	}
	if _, err := Assemble("main:\n bogus\n"); err == nil {
		t.Error("bad source should not assemble")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if len(Workloads()) != 5 {
		t.Error("want 5 workloads")
	}
	if _, ok := GetWorkload("nope"); ok {
		t.Error("GetWorkload(nope) should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustWorkload(nope) should panic")
		}
	}()
	MustWorkload("nope")
}

func TestFacadeExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 14 {
		t.Fatalf("want 14 experiments, have %d", len(ids))
	}
	if _, err := RunExperiment("nope", true); err == nil {
		t.Error("unknown experiment should error")
	}
	out, err := RunExperiment("table1", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "xgcc") || !strings.Contains(out, "mispredict") {
		t.Errorf("table1 output unexpected:\n%s", out)
	}
}

func TestFacadeRenderPipeline(t *testing.T) {
	p := MustWorkload("xvortex").Program(50)
	r, err := RunDetailed(p, DetailedConfig{
		Machine: MachineBase, WindowSize: 64,
		RecordPipeline: true, PipelineLimit: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Pipeline) != 20 {
		t.Fatalf("recorded %d pipeline entries, want 20", len(r.Pipeline))
	}
	out := RenderPipeline(r.Pipeline, 80)
	if !strings.Contains(out, "cycle axis") || !strings.Contains(out, "F") {
		t.Errorf("facade timeline missing content:\n%s", out)
	}
}
