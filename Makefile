# Developer entry points. The repo is pure Go with no dependencies, so
# every target is a thin wrapper around the go tool.

GO ?= go

.PHONY: all build test vet race check bench run-all clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# race exercises the worker pool and the artifact cache's singleflight
# path under the race detector (the runner tests spin up concurrent
# jobs and concurrent lookups for one cache entry).
race:
	$(GO) test -race ./internal/runner/ ./cmd/cisim/

# check is the CI gate: build, vet, full tests, and the race pass.
check: build vet test race

bench:
	$(GO) test -bench=BenchmarkRunAllQuick -benchtime=1x -run=^$$ .

run-all: build
	$(GO) run ./cmd/cisim run -quick all
