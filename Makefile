# Developer entry points. The repo is pure Go with no dependencies, so
# every target is a thin wrapper around the go tool.

GO ?= go

.PHONY: all build test vet lint checkprog race faults schema serve-smoke cache-smoke metrics-smoke check bench bench-baseline benchdiff run-all profile clean

# The headline benchmarks gated by BENCH_10.json (see bench-baseline and
# benchdiff below). BenchmarkTraceGeneration's regex also matches the
# Batched variant; BenchmarkWindowCacheIterate lives in internal/ooo, so
# the bench targets sweep both packages.
BENCHES = BenchmarkRunAllQuick|BenchmarkDetailedMachine|BenchmarkTraceGeneration|BenchmarkIdealScheduler|BenchmarkWindowCacheIterate
BENCHPKGS = . ./internal/ooo

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the repo's custom analyzers (internal/lint): cache-key field
# coverage (keycover), deterministic map iteration (detrange), simulator
# purity (simpure), stack-preserving recover sites (recoverstack),
# hot-loop allocation hygiene (hotalloc), and the concurrency-invariant
# passes — mutex-guarded field discipline (lockguard), global sink
# rebinding (sinkdiscipline), goroutine termination paths (goroleak),
# and atomic/plain access mixing (atomicmix).
lint:
	$(GO) run ./cmd/cisimlint

# checkprog statically verifies the built-in workload programs (branch
# targets, reachability, def-before-use, call discipline, reconvergence).
checkprog:
	$(GO) run ./cmd/cisim check

# race runs the whole tree under the race detector. -short keeps the
# single-threaded model packages cheap (they skip their long sweeps)
# while the concurrency-heavy packages — the worker pool, the artifact
# cache's singleflight path, the serve daemon's dispatcher/streaming
# machinery, and the api engine's sink window — run their full suites:
# none of their tests consult testing.Short.
race:
	$(GO) test -race -short ./...

# faults drives the deterministic fault-injection matrix end to end:
# every fault point (cache corruption, transient/permanent failures,
# hangs, panics, aborts) through real quick experiment runs, plus the
# journal crash-recovery and resume paths (see DESIGN.md §8).
faults:
	$(GO) test -run 'TestFaultMatrix|TestJournalResume|TestRunBadFaultSpec|TestRunResumeNeedsJournal|TestStoreCrash|TestStoreDiskFaults|TestStoreReadCorruption' ./cmd/cisim/

# schema pins the machine-readable interfaces: the run-event JSONL
# stream (cmd/cisim/testdata/event_schema.json against runner.Event and
# a real run), the span trace JSONL (cmd/cisim/testdata/span_schema.json
# against telemetry.Record and a real traced run), and the serve HTTP
# API (internal/api/testdata/api_schema.json against the request/
# response structs).
schema:
	$(GO) test -run 'TestEventSchemaMatchesStruct|TestEventStreamMatchesSchema' ./cmd/cisim/
	$(GO) test -run 'TestSpanSchemaMatchesStruct|TestSpanStreamMatchesSchema' ./cmd/cisim/
	$(GO) test -run 'TestAPISchema|TestSweepRequestRoundTrip' ./internal/api/

# serve-smoke drives the `cisim serve` daemon across a real process
# boundary: start it, submit a quick sweep over HTTP with the example
# client, assert the result is byte-identical to `run -quick -json`,
# and drain it with SIGTERM (see scripts/serve_smoke.sh).
serve-smoke:
	./scripts/serve_smoke.sh

# cache-smoke drives the persistent artifact store (-cache-dir) across
# real process boundaries: two concurrent cold cisim processes share
# one store (no deadlock, byte-identical JSON), a warm third process
# must finish in under half the storeless baseline, the store verifies
# clean, and `cisim cache stats -json` lands in artifacts/ (see
# scripts/cache_smoke.sh, DESIGN.md §13).
cache-smoke:
	./scripts/cache_smoke.sh

# metrics-smoke drives the observability surface across a real process
# boundary: a daemon with a spans directory and a persistent store, a
# traced sweep submitted with a traceparent header (result still
# byte-identical to the CLI), GET /metrics validated by the in-repo
# strict exposition parser (`cisim promcheck`), and the span trace
# analyzed offline (`cisim spans`) with a Chrome export in artifacts/
# (see scripts/metrics_smoke.sh, DESIGN.md §14).
metrics-smoke:
	./scripts/metrics_smoke.sh

# check is the CI gate: build, vet, the custom analyzers, the workload
# verifier, full tests, the race pass, the fault matrix, the schema
# golden tests, and the process-boundary smoke tests (serve daemon,
# persistent store, observability surface).
check: build vet lint checkprog test race faults schema serve-smoke cache-smoke metrics-smoke

bench:
	$(GO) test -bench='BenchmarkRunAllQuick|BenchmarkWindowCacheIterate|BenchmarkTraceGenerationBatched' -benchtime=1x -run=^$$ $(BENCHPKGS)

# bench-baseline re-records the committed benchmark baseline from three
# runs of the headline benchmarks (medians). Run on an idle machine and
# commit the result together with the change that moved the numbers.
bench-baseline:
	$(GO) test -bench='$(BENCHES)' -benchtime=1x -count=3 -benchmem -run=^$$ $(BENCHPKGS) \
		| $(GO) run ./cmd/benchdiff -write BENCH_10.json \
			-note "$$(uname -m), $$($(GO) version | cut -d' ' -f3), -benchtime=1x -count=3 medians"

# benchdiff compares a fresh benchmark run against the committed
# baseline: time deltas beyond ±10% and any allocs/op increase are
# flagged. Advisory (exit 0) because wall-clock noise on shared machines
# is real; pass STRICT=-strict to turn regressions into a failure.
benchdiff:
	$(GO) test -bench='$(BENCHES)' -benchtime=1x -count=3 -benchmem -run=^$$ $(BENCHPKGS) \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_10.json $(STRICT)

run-all: build
	$(GO) run ./cmd/cisim run -quick all

# profile runs a quick campaign with the observability hooks armed and
# drops the artifacts in artifacts/: CPU + heap profiles, a Go execution
# trace, and the run-event stream. Inspect with `go tool pprof
# artifacts/cpu.pprof` / `go tool trace artifacts/exec.trace` /
# `go run ./cmd/cisim events artifacts/events.jsonl`.
profile: build
	mkdir -p artifacts
	$(GO) run ./cmd/cisim run -quick -metrics \
		-cpuprofile artifacts/cpu.pprof -memprofile artifacts/mem.pprof \
		-exectrace artifacts/exec.trace -events artifacts/events.jsonl all
	$(GO) run ./cmd/cisim events artifacts/events.jsonl
