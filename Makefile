# Developer entry points. The repo is pure Go with no dependencies, so
# every target is a thin wrapper around the go tool.

GO ?= go

.PHONY: all build test vet lint checkprog race check bench run-all clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the repo's custom analyzers (internal/lint): cache-key field
# coverage, deterministic map iteration, and simulator purity.
lint:
	$(GO) run ./cmd/cisimlint

# checkprog statically verifies the built-in workload programs (branch
# targets, reachability, def-before-use, call discipline, reconvergence).
checkprog:
	$(GO) run ./cmd/cisim check

# race exercises the worker pool and the artifact cache's singleflight
# path under the race detector (the runner tests spin up concurrent
# jobs and concurrent lookups for one cache entry).
race:
	$(GO) test -race ./internal/runner/ ./cmd/cisim/

# check is the CI gate: build, vet, the custom analyzers, the workload
# verifier, full tests, and the race pass.
check: build vet lint checkprog test race

bench:
	$(GO) test -bench=BenchmarkRunAllQuick -benchtime=1x -run=^$$ .

run-all: build
	$(GO) run ./cmd/cisim run -quick all
